// Package simmem implements the simulated memory subsystem that the whole
// framework is built on: a byte-addressable address space divided into
// application memory regions (private, heap, stack — Table 2 of the paper),
// with pluggable per-region protection codecs (ECC), stuck-at fault state
// for hard errors, access observation hooks for the monitoring framework,
// optional persistent backing storage for recoverability experiments, and a
// virtual clock.
//
// It substitutes for the paper's WinDbg-based manipulation of live process
// memory: applications in internal/apps store all of their data structures
// in an AddressSpace and access them through Load/Store, so injected bit
// flips corrupt the actual bytes those applications parse and traverse.
// Crashes, incorrect results, and masking then emerge from real execution
// rather than from a closed-form model.
package simmem

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sync"
)

// Addr is a simulated virtual address.
type Addr uint64

// RegionKind classifies application memory regions per Table 2.
type RegionKind int

// Region kinds.
const (
	// RegionPrivate is pre-allocated user-managed memory (VirtualAlloc /
	// mmap), e.g. WebSearch's read-only index cache.
	RegionPrivate RegionKind = iota + 1
	// RegionHeap holds dynamically allocated data.
	RegionHeap
	// RegionStack holds function parameters and local variables.
	RegionStack
	// RegionOther is program code, managed heap, and so on.
	RegionOther
)

// String returns the region kind name as used in the paper's tables.
func (k RegionKind) String() string {
	switch k {
	case RegionPrivate:
		return "private"
	case RegionHeap:
		return "heap"
	case RegionStack:
		return "stack"
	case RegionOther:
		return "other"
	default:
		return fmt.Sprintf("region(%d)", int(k))
	}
}

// Config configures an AddressSpace.
type Config struct {
	// PageSize is the memory page granularity in bytes (used for page
	// retirement and checkpoint flushing). Defaults to 4096. Must be a
	// power of two and a multiple of every region codec's word size.
	PageSize int
	// Clock is the virtual time source. A new zero clock is created if
	// nil.
	Clock *Clock
	// ScrubOnCorrect writes corrected data back to memory on every
	// corrected load (demand scrubbing). Off by default: like most
	// memory controllers, corrections are made on the fly and the
	// erroneous cells keep their contents until overwritten.
	ScrubOnCorrect bool
	// DisableFastPath turns off the clean-page fast path, forcing every
	// access through per-byte sensing and per-word decoding. The fast
	// path is bit-identical to the slow path (see the taint invariant in
	// DESIGN.md); this knob exists so equivalence tests and benchmarks
	// can drive the reference slow path over identical workloads.
	DisableFastPath bool
}

// Counters aggregates access and protection statistics for an address
// space.
type Counters struct {
	Loads         uint64
	Stores        uint64
	Corrected     uint64 // corrected-error decode events
	Uncorrectable uint64 // uncorrectable decode events (before software response)
	Recovered     uint64 // uncorrectable events repaired by an MCHandler
}

// AddressSpace is one application's simulated memory. It is not safe for
// concurrent use; characterization campaigns create one address space per
// trial goroutine.
type AddressSpace struct {
	pageSize       int
	pageShift      int // log2(pageSize); page size is a validated power of two
	clock          *Clock
	scrubOnCorrect bool
	regions        []*Region
	accessObs      []AccessObserver
	eccObs         []ECCObserver
	counters       Counters
	cache          *cache    // nil unless EnableCache was called
	snap           *Snapshot // active capture (snapshot.go), nil until Snapshot
	// fastPath gates the clean-word fast path (on unless
	// Config.DisableFastPath); fastLoads counts load operations (Load
	// calls and cache-line fills) it served without decoding a word or
	// sensing a byte, and fastWords counts the individual granules bulk-
	// copied that way (partially-fast loads advance fastWords but not
	// fastLoads). Both counters are monotonic across snapshot restores:
	// they are observability, not simulated state.
	fastPath  bool
	fastLoads uint64
	fastWords uint64
	// acc is the default accessor behind the AddressSpace-level
	// Load/Store API; fillAcc serves cache-line fills so fill lookups
	// never thrash an application accessor's one-entry region cache.
	// Additional independent accessors come from NewAccessor.
	acc     Accessor
	fillAcc Accessor
	// Reusable scratch for the word/check (and raw-write widening)
	// buffers of the decode/encode paths. scratchBusy guards against
	// reentrancy: an MC handler or observer that re-enters the memory
	// path while a frame up the stack holds the scratch falls back to
	// allocating (reentrant paths only run when real errors are being
	// handled, never on the clean hot path).
	scratchWord  []byte
	scratchCheck []byte
	scratchBusy  bool
	// gate serializes whole logical operations when the space is shared
	// by a live server's connection goroutines and a fault injector; see
	// gate.go. Single-goroutine users (the campaign engine) never touch
	// it.
	gate sync.Mutex
}

// New creates an empty address space.
func New(cfg Config) (*AddressSpace, error) {
	if cfg.PageSize == 0 {
		cfg.PageSize = 4096
	}
	if cfg.PageSize < 16 || cfg.PageSize&(cfg.PageSize-1) != 0 {
		return nil, fmt.Errorf("simmem: page size %d is not a power of two >= 16", cfg.PageSize)
	}
	if cfg.Clock == nil {
		cfg.Clock = &Clock{}
	}
	as := &AddressSpace{
		pageSize:       cfg.PageSize,
		pageShift:      bits.TrailingZeros(uint(cfg.PageSize)),
		clock:          cfg.Clock,
		scrubOnCorrect: cfg.ScrubOnCorrect,
		fastPath:       !cfg.DisableFastPath,
	}
	as.acc.as = as
	as.fillAcc.as = as
	return as, nil
}

// SetFastPath enables or disables the clean-page fast path and returns
// the previous setting. Both settings produce bit-identical data,
// counters, events, and faults; differential tests and benchmarks use
// this to compare the two paths on a space built by code that does not
// expose Config.DisableFastPath.
func (as *AddressSpace) SetFastPath(on bool) bool {
	prev := as.fastPath
	as.fastPath = on
	return prev
}

// FastPathLoads returns the number of load operations (Load calls and
// cache-line fills) served entirely from untainted granules — bulk
// copies with no per-byte sensing and no codeword decoding. The counter
// is monotonic: snapshot restores do not roll it back.
func (as *AddressSpace) FastPathLoads() uint64 { return as.fastLoads }

// FastPathWords returns the number of individual granules (codewords in
// protected regions) the fast path served as bulk copies, including the
// clean granules of partially-tainted loads. Monotonic, like
// FastPathLoads.
func (as *AddressSpace) FastPathWords() uint64 { return as.fastWords }

// TaintedPages returns the number of pages with at least one tainted
// granule (granules whose sensed contents are not known to decode
// clean, forcing accesses through the full decode path).
func (as *AddressSpace) TaintedPages() int {
	p, _ := as.TaintStats()
	return p
}

// TaintedWords returns the number of tainted granules across all
// regions.
func (as *AddressSpace) TaintedWords() int {
	_, w := as.TaintStats()
	return w
}

// TaintStats returns the tainted page and granule counts in one pass.
func (as *AddressSpace) TaintStats() (pages, words int) {
	for _, r := range as.regions {
		for _, p := range r.pages {
			if !p.anyTaint {
				continue
			}
			pages++
			for _, b := range p.taint {
				words += bits.OnesCount64(b)
			}
		}
	}
	return pages, words
}

// Clock returns the address space's virtual clock.
func (as *AddressSpace) Clock() *Clock { return as.clock }

// PageSize returns the page granularity in bytes.
func (as *AddressSpace) PageSize() int { return as.pageSize }

// Counters returns a snapshot of the access and ECC counters.
func (as *AddressSpace) Counters() Counters { return as.counters }

// AddAccessObserver registers an observer for application accesses.
func (as *AddressSpace) AddAccessObserver(o AccessObserver) {
	as.accessObs = append(as.accessObs, o)
}

// AddECCObserver registers an observer for detection/correction events.
func (as *AddressSpace) AddECCObserver(o ECCObserver) {
	as.eccObs = append(as.eccObs, o)
}

// Regions returns the mapped regions in layout order. The returned slice
// must not be modified.
func (as *AddressSpace) Regions() []*Region { return as.regions }

// RegionByKind returns the first region of the given kind, or nil.
func (as *AddressSpace) RegionByKind(k RegionKind) *Region {
	for _, r := range as.regions {
		if r.kind == k {
			return r
		}
	}
	return nil
}

// RegionByName returns the named region, or nil.
func (as *AddressSpace) RegionByName(name string) *Region {
	for _, r := range as.regions {
		if r.name == name {
			return r
		}
	}
	return nil
}

// RegionSpec describes a region to map.
type RegionSpec struct {
	// Name identifies the region (unique within the address space).
	Name string
	// Kind is the Table 2 classification.
	Kind RegionKind
	// Size is the mapped size in bytes; it is rounded up to a whole
	// number of pages.
	Size int
	// ReadOnly rejects application stores (setup and recovery writes go
	// through WriteRaw). WebSearch's index cache is read-only.
	ReadOnly bool
	// Backed maintains a persistent-storage shadow copy used by the
	// recoverability analysis and by Par+R software recovery.
	Backed bool
	// Codec is the hardware protection technique; nil means no
	// detection/correction (NoECC).
	Codec Codec
	// MC handles uncorrectable errors; nil means they crash the
	// application.
	MC MCHandler
}

// regionGap leaves unmapped guard space between regions so corrupted
// pointers usually fault rather than silently landing in a neighbour.
const regionGap = 1 << 20

// firstBase is the base address of the first mapped region; addresses below
// it are never mapped, so small corrupted offsets fault.
const firstBase Addr = 1 << 16

// AddRegion maps a new region after the existing ones.
func (as *AddressSpace) AddRegion(spec RegionSpec) (*Region, error) {
	if spec.Size <= 0 {
		return nil, fmt.Errorf("simmem: region %q size must be positive, got %d", spec.Name, spec.Size)
	}
	if as.RegionByName(spec.Name) != nil {
		return nil, fmt.Errorf("simmem: region %q already mapped", spec.Name)
	}
	if spec.Codec != nil {
		w := spec.Codec.WordBytes()
		if w <= 0 || as.pageSize%w != 0 {
			return nil, fmt.Errorf("simmem: codec %q word size %d does not divide page size %d",
				spec.Codec.Name(), w, as.pageSize)
		}
		if spec.Codec.CheckBytes() <= 0 {
			return nil, fmt.Errorf("simmem: codec %q has no check storage", spec.Codec.Name())
		}
		// Pre-size the shared scratch so the decode/encode paths never
		// allocate in steady state.
		if cap(as.scratchWord) < w {
			as.scratchWord = make([]byte, w)
		}
		if c := spec.Codec.CheckBytes(); cap(as.scratchCheck) < c {
			as.scratchCheck = make([]byte, c)
		}
	}
	// Round size up to whole pages.
	npages := (spec.Size + as.pageSize - 1) / as.pageSize
	size := npages * as.pageSize

	base := firstBase
	if n := len(as.regions); n > 0 {
		last := as.regions[n-1]
		base = last.base + Addr(last.size) + regionGap
	}
	r := &Region{
		as:       as,
		name:     spec.Name,
		kind:     spec.Kind,
		base:     base,
		size:     size,
		readOnly: spec.ReadOnly,
		codec:    spec.Codec,
		mc:       spec.MC,
		pages:    make([]*page, npages),
	}
	// Unprotected regions have no codeword structure, so taint tracks
	// fixed 64-byte chunks (or the whole page when pages are smaller) —
	// fine-grained enough that one stuck bit does not slow the rest of
	// the page, coarse enough that bitmaps stay tiny.
	r.granule = 64
	if r.granule > as.pageSize {
		r.granule = as.pageSize
	}
	if spec.Codec != nil {
		r.granule = spec.Codec.WordBytes()
	}
	r.granShift = -1
	if r.granule&(r.granule-1) == 0 {
		r.granShift = bits.TrailingZeros(uint(r.granule))
	}
	if spec.Codec != nil {
		r.checkBytes = spec.Codec.CheckBytes()
	}
	r.wordsPerPage = as.pageSize / r.granule
	r.taintLen = (r.wordsPerPage + 63) / 64
	checkPerPage := 0
	if spec.Codec != nil {
		checkPerPage = as.pageSize / spec.Codec.WordBytes() * spec.Codec.CheckBytes()
	}
	for i := range r.pages {
		p := &page{data: make([]byte, as.pageSize)}
		if checkPerPage > 0 {
			p.check = make([]byte, checkPerPage)
		}
		r.pages[i] = p
	}
	if spec.Backed {
		r.backing = make([]byte, size)
	}
	as.regions = append(as.regions, r)
	return r, nil
}

// page is one physical page frame of a region.
type page struct {
	data  []byte
	check []byte // nil when the region is unprotected
	// stuckSet forces bits to 1 on sensing; stuckClr forces bits to 0.
	// Both are nil until the first hard error is installed.
	stuckSet  []byte
	stuckClr  []byte
	corrected uint64 // corrected-error events observed on this frame
	replaced  int    // times the frame was replaced (retirement)
	// taint is a per-granule (codeword, or Region.granule bytes when
	// unprotected) bitmap recording which words may hold a visible
	// error. The invariant (DESIGN.md "Clean-word fast path"): an
	// untainted granule has no stuck-at state over its bytes and (in
	// protected regions) decodes VerdictClean, so sensing it is a plain
	// copy of data and decoding it is a no-op — which is exactly what
	// the fast path does. Every corruption channel sets the covering
	// bits; only operations that re-establish the invariant verifiably
	// clear them. The slice is allocated lazily on first taint (clean
	// frames — the overwhelming majority — pay one nil pointer).
	// anyTaint is the page-level summary: true iff any bit is set, so
	// the all-clean fast test stays one flag load per page.
	taint    []uint64
	anyTaint bool
}

// wordTainted reports whether granule wi of the page is tainted.
func (p *page) wordTainted(wi int) bool {
	return p.anyTaint && p.taint[wi>>6]&(1<<(wi&63)) != 0
}

// cleanWords reports whether granules w0..w1 (inclusive) are all clean.
func (p *page) cleanWords(w0, w1 int) bool {
	if !p.anyTaint {
		return true
	}
	first, last := w0>>6, w1>>6
	lead := ^uint64(0) << (w0 & 63)
	trail := ^uint64(0) >> (63 - (w1 & 63))
	if first == last {
		return p.taint[first]&lead&trail == 0
	}
	if p.taint[first]&lead != 0 || p.taint[last]&trail != 0 {
		return false
	}
	for i := first + 1; i < last; i++ {
		if p.taint[i] != 0 {
			return false
		}
	}
	return true
}

// stuckInRange reports whether any stuck-at mask covers stored bytes
// [lo, hi) of the page.
func (p *page) stuckInRange(lo, hi int) bool {
	if p.stuckSet != nil {
		for _, b := range p.stuckSet[lo:hi] {
			if b != 0 {
				return true
			}
		}
	}
	if p.stuckClr != nil {
		for _, b := range p.stuckClr[lo:hi] {
			if b != 0 {
				return true
			}
		}
	}
	return false
}

// senseByte returns the value the memory device would return for byte i of
// the page, applying stuck-at faults.
func (p *page) senseByte(i int) byte {
	b := p.data[i]
	if p.stuckClr != nil {
		b &^= p.stuckClr[i]
	}
	if p.stuckSet != nil {
		b |= p.stuckSet[i]
	}
	return b
}

// hasStuck reports whether the frame has any stuck-at fault state.
func (p *page) hasStuck() bool { return p.stuckSet != nil || p.stuckClr != nil }

// Region is a contiguous mapped range of the address space.
type Region struct {
	as       *AddressSpace
	name     string
	kind     RegionKind
	base     Addr
	size     int
	readOnly bool
	codec    Codec
	mc       MCHandler
	pages    []*page
	backing  []byte
	used     int
	// Taint-bitmap geometry: granule is the taint tracking unit in
	// bytes — the codec word size in protected regions (taint must align
	// with what a decode covers), a fixed sub-page chunk otherwise. It
	// always divides the page size. wordsPerPage and taintLen (uint64
	// words per page bitmap) are derived once at mapping time.
	granule      int
	granShift    int // log2(granule) when it is a power of two, else -1
	checkBytes   int // codec.CheckBytes(), cached off the hot path (0 if nil)
	wordsPerPage int
	taintLen     int
	// Dirty-page tracking for the snapshot layer (snapshot.go): nil
	// until a snapshot arms it, then a per-page dirtied flag plus the
	// list of dirtied page indices (what Restore walks).
	dirty     []bool
	dirtyList []int
}

// Name returns the region name.
func (r *Region) Name() string { return r.name }

// Kind returns the Table 2 classification.
func (r *Region) Kind() RegionKind { return r.kind }

// Base returns the first mapped address.
func (r *Region) Base() Addr { return r.base }

// Size returns the mapped size in bytes.
func (r *Region) Size() int { return r.size }

// ReadOnly reports whether application stores are rejected.
func (r *Region) ReadOnly() bool { return r.readOnly }

// Backed reports whether the region has a persistent-storage shadow.
func (r *Region) Backed() bool { return r.backing != nil }

// Codec returns the protection codec, or nil for NoECC.
func (r *Region) Codec() Codec { return r.codec }

// SetMCHandler installs (or clears) the uncorrectable-error software
// response for this region.
func (r *Region) SetMCHandler(h MCHandler) { r.mc = h }

// Used returns the high-water mark of bytes actually occupied by
// application data, as reported by the region's allocator. Error-injection
// address sampling draws only from used bytes, matching the paper's
// sampling of valid application addresses.
func (r *Region) Used() int { return r.used }

// SetUsed records the number of occupied bytes (clamped to the region
// size).
func (r *Region) SetUsed(n int) {
	if n < 0 {
		n = 0
	}
	if n > r.size {
		n = r.size
	}
	r.used = n
}

// Contains reports whether addr falls inside the region.
func (r *Region) Contains(addr Addr) bool {
	return addr >= r.base && addr < r.base+Addr(r.size)
}

// PageCount returns the number of page frames.
func (r *Region) PageCount() int { return len(r.pages) }

// PageIndex returns the page number containing addr, which must be inside
// the region.
func (r *Region) PageIndex(addr Addr) int {
	return int(addr-r.base) / r.as.pageSize
}

// PageAddr returns the first address of page i.
func (r *Region) PageAddr(i int) Addr {
	return r.base + Addr(i*r.as.pageSize)
}

// CorrectedOnPage returns the number of corrected-error events observed on
// page i since its frame was last replaced. Page-retirement policies use
// this as their threshold input.
func (r *Region) CorrectedOnPage(i int) uint64 { return r.pages[i].corrected }

// Replacements returns how many times page i's frame has been replaced.
func (r *Region) Replacements(i int) int { return r.pages[i].replaced }

// wordIndex returns the taint-granule index within its page of region
// offset off.
func (r *Region) wordIndex(off int) int {
	return (off % r.as.pageSize) / r.granule
}

// taintWord marks granule wi of page pi as possibly holding a visible
// error, and dirties the page so an armed snapshot rolls the bitmap
// back with the data.
func (r *Region) taintWord(pi, wi int) {
	r.markDirty(pi)
	p := r.pages[pi]
	if p.taint == nil {
		p.taint = make([]uint64, r.taintLen)
	}
	p.taint[wi>>6] |= 1 << (wi & 63)
	p.anyTaint = true
}

// taintPage marks every granule of page pi tainted — the conservative
// whole-page channel (frame replacement's swap window).
func (r *Region) taintPage(pi int) {
	r.markDirty(pi)
	p := r.pages[pi]
	if p.taint == nil {
		p.taint = make([]uint64, r.taintLen)
	}
	full := r.wordsPerPage >> 6
	for i := 0; i < full; i++ {
		p.taint[i] = ^uint64(0)
	}
	if rem := r.wordsPerPage & 63; rem != 0 {
		p.taint[full] = 1<<rem - 1
	}
	p.anyTaint = true
}

// clearWordTaint marks granule wi of page pi verifiably clean again.
// Callers must have re-established the taint invariant for the granule
// (no stuck-at state over its bytes, decodes clean) first. The bitmap
// change dirties the page so an armed snapshot restores the captured
// taint state exactly; clearing an already-clean granule is a no-op
// with no tracking cost.
func (r *Region) clearWordTaint(pi, wi int) {
	p := r.pages[pi]
	if !p.anyTaint || p.taint[wi>>6]&(1<<(wi&63)) == 0 {
		return
	}
	r.markDirty(pi)
	p.taint[wi>>6] &^= 1 << (wi & 63)
	p.anyTaint = false
	for _, b := range p.taint {
		if b != 0 {
			p.anyTaint = true
			break
		}
	}
}

// clearPageTaint marks every granule of page pi verifiably clean.
func (r *Region) clearPageTaint(pi int) {
	p := r.pages[pi]
	if !p.anyTaint {
		return
	}
	r.markDirty(pi)
	clear(p.taint)
	p.anyTaint = false
}

// spanWords counts the granules overlapped by the n-byte span at region
// offset off (n must be positive). It is the fast-path accounting unit:
// the number of codewords a decode-everything path would have visited.
func (r *Region) spanWords(off, n int) uint64 {
	if s := r.granShift; s >= 0 {
		return uint64((off+n-1)>>s - off>>s + 1)
	}
	g := r.granule
	return uint64((off+n-1)/g - off/g + 1)
}

// cleanPages reports whether pages p0..p1 (inclusive) are all fully
// untainted (their summary bits are clear).
func (r *Region) cleanPages(p0, p1 int) bool {
	for pi := p0; pi <= p1; pi++ {
		if r.pages[pi].anyTaint {
			return false
		}
	}
	return true
}

// copyStored copies len(buf) stored bytes starting at region offset off
// into buf — raw page data, no stuck-at sensing. On untainted pages this
// equals sensing (no stuck-at state exists); the raw-access paths use it
// regardless of taint because they read storage by definition.
func (r *Region) copyStored(buf []byte, off int) {
	ps := r.as.pageSize
	for n := 0; n < len(buf); {
		o := off + n
		n += copy(buf[n:], r.pages[o/ps].data[o%ps:])
	}
}

// verifyWordClean reports whether granule wi of page pi provably
// satisfies the taint invariant: no stuck-at state over its bytes, and
// (in protected regions) the codeword decodes VerdictClean. It decodes
// into scratch copies so a correctable pattern is not corrected as a
// side effect. Equivalence tests use it to audit the bitmap against
// ground truth; the access paths trust the bitmap instead of paying
// for verification.
func (r *Region) verifyWordClean(pi, wi int) bool {
	p := r.pages[pi]
	g := r.granule
	if p.stuckInRange(wi*g, (wi+1)*g) {
		return false
	}
	if r.codec == nil {
		return true
	}
	as := r.as
	c := r.codec.CheckBytes()
	word, check, owned := as.acquireScratch(g, c)
	defer as.releaseScratch(owned)
	copy(word, p.data[wi*g:(wi+1)*g])
	copy(check, p.check[wi*c:(wi+1)*c])
	return r.codec.Decode(word, check) == VerdictClean
}

// acquireScratch hands out the address space's reusable word/check
// buffers, or fresh allocations when a frame up the stack already holds
// them (an MC handler or observer re-entered the memory path). Callers
// must pair it with releaseScratch(owned).
func (as *AddressSpace) acquireScratch(w, c int) (word, check []byte, owned bool) {
	if as.scratchBusy {
		return make([]byte, w), make([]byte, c), false
	}
	if cap(as.scratchWord) < w {
		as.scratchWord = make([]byte, w)
	}
	if cap(as.scratchCheck) < c {
		as.scratchCheck = make([]byte, c)
	}
	as.scratchBusy = true
	return as.scratchWord[:w], as.scratchCheck[:c], true
}

// releaseScratch returns the scratch buffers acquired with owned=true.
func (as *AddressSpace) releaseScratch(owned bool) {
	if owned {
		as.scratchBusy = false
	}
}

// lookupRegion is the uncached region lookup: a binary search over the
// region bases (regions are mapped in ascending address order and never
// removed, so the slice is always sorted).
func (as *AddressSpace) lookupRegion(addr Addr) *Region {
	regions := as.regions
	lo, hi := 0, len(regions)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r := regions[mid]; addr >= r.base+Addr(r.size) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(regions) && regions[lo].Contains(addr) {
		return regions[lo]
	}
	return nil
}

// findRegion locates the region containing addr through the default
// accessor's one-entry cache (see Accessor in accessor.go).
func (as *AddressSpace) findRegion(addr Addr) *Region {
	return as.acc.findRegion(addr)
}

// locate resolves an access of n bytes at addr through the default
// accessor.
func (as *AddressSpace) locate(addr Addr, n int) (*Region, error) {
	return as.acc.locate(addr, n)
}

// Load reads len(buf) bytes at addr through the full memory path (via
// the default accessor): stuck-at faults are sensed, protected regions
// decode every covered codeword (possibly correcting, possibly raising
// a machine check), and access observers are notified.
func (as *AddressSpace) Load(addr Addr, buf []byte) error {
	return as.acc.Load(addr, buf)
}

// senseInto copies len(buf) bytes starting at region offset off into
// buf, applying stuck-at masks. On the fast path every untainted
// granule (which by the invariant carries no stuck-at state) is a bulk
// copy of the stored bytes; only tainted granules sense per byte. It
// reports true when the whole span was served by bulk copies.
func (r *Region) senseInto(buf []byte, off int) bool {
	if len(buf) == 0 {
		return true
	}
	as := r.as
	ps := as.pageSize
	if !as.fastPath {
		for i := range buf {
			o := off + i
			buf[i] = r.pages[o/ps].senseByte(o % ps)
		}
		return false
	}
	// Single-page untainted span: the overwhelmingly common case. One
	// summary-bit probe, one copy, shift-based arithmetic throughout.
	if pi := off >> as.pageShift; off+len(buf) <= (pi+1)<<as.pageShift && !r.pages[pi].anyTaint {
		copy(buf, r.pages[pi].data[off&(ps-1):off&(ps-1)+len(buf)])
		as.fastWords += r.spanWords(off, len(buf))
		return true
	}
	g := r.granule
	if r.cleanPages(off/ps, (off+len(buf)-1)/ps) {
		r.copyStored(buf, off)
		as.fastWords += r.spanWords(off, len(buf))
		return true
	}
	allClean := true
	for n := 0; n < len(buf); {
		o := off + n
		p := r.pages[o/ps]
		inPage := o % ps
		wi := inPage / g
		take := (wi+1)*g - inPage // to the end of this granule
		if take > len(buf)-n {
			take = len(buf) - n
		}
		if !p.wordTainted(wi) {
			copy(buf[n:n+take], p.data[inPage:inPage+take])
			as.fastWords++
		} else {
			allClean = false
			for i := 0; i < take; i++ {
				buf[n+i] = p.senseByte(inPage + i)
			}
		}
		n += take
	}
	return allClean
}

// loadDecoded performs a protected load of len(buf) bytes at region offset
// off. On the fast path untainted codewords skip the decode entirely —
// the taint invariant guarantees each would decode VerdictClean and come
// back unmodified, so their bytes are bulk-copied from storage (with no
// counters, events, or scrubbing side effects, exactly as the full path
// would behave on them); only tainted codewords go through sensing and
// decode. It reports true when every covered word was served clean.
func (as *AddressSpace) loadDecoded(r *Region, off int, buf []byte) (bool, error) {
	w := r.granule
	c := r.checkBytes
	ps := as.pageSize
	// Single-page untainted span: the overwhelmingly common case. One
	// summary-bit probe, one copy, shift-based arithmetic throughout.
	// Codewords never straddle pages, so the page holding the requested
	// bytes also holds the word-aligned expansion of the span.
	if as.fastPath && len(buf) > 0 {
		if pi := off >> as.pageShift; off+len(buf) <= (pi+1)<<as.pageShift && !r.pages[pi].anyTaint {
			copy(buf, r.pages[pi].data[off&(ps-1):off&(ps-1)+len(buf)])
			as.fastWords += r.spanWords(off, len(buf))
			return true, nil
		}
	}
	first := off / w * w
	last := (off + len(buf) + w - 1) / w * w
	if first == last {
		return true, nil
	}
	if as.fastPath && r.cleanPages(first/ps, (last-1)/ps) {
		r.copyStored(buf, off)
		as.fastWords += uint64((last - first) / w)
		return true, nil
	}
	word, check, owned := as.acquireScratch(w, c)
	defer as.releaseScratch(owned)
	allClean := as.fastPath
	for wo := first; wo < last; wo += w {
		p := r.pages[wo/ps]
		inPage := wo % ps
		wordIdx := inPage / w
		if as.fastPath && !p.wordTainted(wordIdx) {
			// Clean codeword on a partially-tainted span: copy the
			// stored bytes that overlap the request.
			as.fastWords++
			lo, hi := wo, wo+w
			if lo < off {
				lo = off
			}
			if hi > off+len(buf) {
				hi = off + len(buf)
			}
			copy(buf[lo-off:hi-off], p.data[inPage+lo-wo:inPage+hi-wo])
			continue
		}
		allClean = false
		// Sense the stored word and its check bytes.
		for i := 0; i < w; i++ {
			word[i] = p.senseByte(inPage + i)
		}
		copy(check, p.check[wordIdx*c:(wordIdx+1)*c])

		verdict := r.codec.Decode(word, check)
		if verdict == VerdictUncorrectable {
			v, err := as.handleUncorrectable(r, wo, word, check)
			if err != nil {
				return false, err
			}
			verdict = v
		}
		if verdict == VerdictCorrected {
			as.counters.Corrected++
			r.markDirty(wo / ps)
			p.corrected++
			as.notifyECC(ECCEvent{Kind: ECCCorrected, Addr: r.base + Addr(wo), Time: as.clock.Now(), Region: r})
			if as.scrubOnCorrect {
				copy(p.data[inPage:inPage+w], word)
				copy(p.check[wordIdx*c:(wordIdx+1)*c], check)
			}
		}
		// Copy the decoded bytes that overlap the request.
		for i := 0; i < w; i++ {
			o := wo + i
			if o >= off && o < off+len(buf) {
				buf[o-off] = word[i]
			}
		}
	}
	return allClean, nil
}

// handleUncorrectable runs the software response for an uncorrectable
// error at region word offset wo. On successful recovery it re-senses and
// re-decodes the word into word/check and returns the new verdict;
// otherwise it returns a machine-check fault.
func (as *AddressSpace) handleUncorrectable(r *Region, wo int, word, check []byte) (Verdict, error) {
	as.counters.Uncorrectable++
	addr := r.base + Addr(wo)
	as.notifyECC(ECCEvent{Kind: ECCUncorrectable, Addr: addr, Time: as.clock.Now(), Region: r})
	if r.mc == nil || r.mc.HandleMC(as, MCEvent{Addr: addr, Region: r}) != MCRecovered {
		return VerdictUncorrectable, &Fault{Kind: FaultMachineCheck, Addr: addr}
	}
	// The handler claims to have repaired storage; retry once.
	w := r.codec.WordBytes()
	c := r.codec.CheckBytes()
	p := r.pages[wo/as.pageSize]
	inPage := wo % as.pageSize
	wordIdx := inPage / w
	for i := 0; i < w; i++ {
		word[i] = p.senseByte(inPage + i)
	}
	copy(check, p.check[wordIdx*c:(wordIdx+1)*c])
	v := r.codec.Decode(word, check)
	if v == VerdictUncorrectable {
		return v, &Fault{Kind: FaultMachineCheck, Addr: addr}
	}
	as.counters.Recovered++
	as.notifyECC(ECCEvent{Kind: ECCRecovered, Addr: addr, Time: as.clock.Now(), Region: r})
	return v, nil
}

// Store writes data at addr through the full memory path (via the
// default accessor). Stores to read-only regions fault. In protected
// regions, partial codewords are read-modify-written: the untouched
// bytes are decoded first (which can itself raise a machine check),
// then the whole word is re-encoded.
func (as *AddressSpace) Store(addr Addr, data []byte) error {
	return as.acc.Store(addr, data)
}

// writeBytes writes raw bytes at region offset off (no encoding).
func (r *Region) writeBytes(off int, data []byte) {
	ps := r.as.pageSize
	for len(data) > 0 {
		pi := off / ps
		r.markDirty(pi)
		p := r.pages[pi]
		inPage := off % ps
		n := copy(p.data[inPage:], data)
		data = data[n:]
		off += n
	}
}

// storeEncoded writes data at region offset off in a protected region,
// re-encoding every touched codeword.
func (as *AddressSpace) storeEncoded(r *Region, off int, data []byte) error {
	w := r.granule
	c := r.checkBytes
	ps := as.pageSize
	// Word-aligned single-page store: every touched codeword is fully
	// overwritten, so no read-modify-write decode happens on any path —
	// write the caller's bytes into storage and re-encode each codeword
	// in place, skipping the scratch buffers and the byte-merge loop.
	if off%w == 0 && len(data)%w == 0 && len(data) > 0 {
		if pi := off >> as.pageShift; off+len(data) <= (pi+1)<<as.pageShift {
			p := r.pages[pi]
			r.markDirty(pi)
			inPage := off & (ps - 1)
			for k, wi := 0, inPage/w; k < len(data); k, wi = k+w, wi+1 {
				d := p.data[inPage+k : inPage+k+w]
				copy(d, data[k:k+w])
				r.codec.Encode(d, p.check[wi*c:wi*c+c])
				// Overwritten words rejoin the taint invariant immediately
				// unless stuck-at state covers them (masking-by-overwrite,
				// identical to the general path below).
				if p.anyTaint && !p.stuckInRange(inPage+k, inPage+k+w) {
					r.clearWordTaint(pi, wi)
				}
			}
			return nil
		}
	}
	first := off / w * w
	last := (off + len(data) + w - 1) / w * w
	word, check, owned := as.acquireScratch(w, c)
	defer as.releaseScratch(owned)
	for wo := first; wo < last; wo += w {
		pi := wo / ps
		r.markDirty(pi)
		p := r.pages[pi]
		inPage := wo % ps
		wordIdx := inPage / w
		partial := wo < off || wo+w > off+len(data)
		if partial {
			if as.fastPath && !p.wordTainted(wordIdx) {
				// The taint invariant says this word would sense as its
				// stored bytes and decode VerdictClean unchanged, so the
				// read-modify-write decode is a no-op: take the stored
				// bytes directly.
				copy(word, p.data[inPage:inPage+w])
			} else {
				// Read-modify-write: decode the existing word so latent
				// errors in the untouched bytes are handled, not laundered
				// into a fresh valid codeword.
				for i := 0; i < w; i++ {
					word[i] = p.senseByte(inPage + i)
				}
				copy(check, p.check[wordIdx*c:(wordIdx+1)*c])
				verdict := r.codec.Decode(word, check)
				if verdict == VerdictUncorrectable {
					v, err := as.handleUncorrectable(r, wo, word, check)
					if err != nil {
						return err
					}
					verdict = v
				}
				if verdict == VerdictCorrected {
					as.counters.Corrected++
					p.corrected++
					as.notifyECC(ECCEvent{Kind: ECCCorrected, Addr: r.base + Addr(wo), Time: as.clock.Now(), Region: r})
				}
			}
		}
		// Merge the new bytes.
		for i := 0; i < w; i++ {
			o := wo + i
			if o >= off && o < off+len(data) {
				word[i] = data[o-off]
			}
		}
		r.codec.Encode(word, check)
		copy(p.data[inPage:inPage+w], word)
		copy(p.check[wordIdx*c:(wordIdx+1)*c], check)
		// The word just went through a full re-encode of decoded (or
		// provably clean) data, so it satisfies the taint invariant again
		// unless stuck-at state covers it — the paper's masking-by-
		// overwrite, applied to the fast path: overwritten words rejoin
		// it immediately. (Identical on both paths: taint transitions
		// never depend on fastPath.)
		if p.anyTaint && !p.stuckInRange(inPage, inPage+w) {
			r.clearWordTaint(pi, wordIdx)
		}
	}
	return nil
}

// notifyAccess fans an access event out to the observers.
func (as *AddressSpace) notifyAccess(ev AccessEvent) {
	for _, o := range as.accessObs {
		o.ObserveAccess(ev)
	}
}

// notifyECC fans an ECC event out to the observers.
func (as *AddressSpace) notifyECC(ev ECCEvent) {
	for _, o := range as.eccObs {
		o.ObserveECC(ev)
	}
}

// Typed accessors. All use little-endian byte order.

// LoadU64 loads a 64-bit value.
func (as *AddressSpace) LoadU64(addr Addr) (uint64, error) {
	var b [8]byte
	if err := as.Load(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// StoreU64 stores a 64-bit value.
func (as *AddressSpace) StoreU64(addr Addr, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return as.Store(addr, b[:])
}

// LoadU32 loads a 32-bit value.
func (as *AddressSpace) LoadU32(addr Addr) (uint32, error) {
	var b [4]byte
	if err := as.Load(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// StoreU32 stores a 32-bit value.
func (as *AddressSpace) StoreU32(addr Addr, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return as.Store(addr, b[:])
}

// LoadU16 loads a 16-bit value.
func (as *AddressSpace) LoadU16(addr Addr) (uint16, error) {
	var b [2]byte
	if err := as.Load(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}

// StoreU16 stores a 16-bit value.
func (as *AddressSpace) StoreU16(addr Addr, v uint16) error {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	return as.Store(addr, b[:])
}

// LoadU8 loads one byte.
func (as *AddressSpace) LoadU8(addr Addr) (byte, error) {
	var b [1]byte
	if err := as.Load(addr, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

// StoreU8 stores one byte.
func (as *AddressSpace) StoreU8(addr Addr, v byte) error {
	b := [1]byte{v}
	return as.Store(addr, b[:])
}

// LoadF64 loads a float64.
func (as *AddressSpace) LoadF64(addr Addr) (float64, error) {
	u, err := as.LoadU64(addr)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(u), nil
}

// StoreF64 stores a float64.
func (as *AddressSpace) StoreF64(addr Addr, v float64) error {
	return as.StoreU64(addr, math.Float64bits(v))
}

// LoadF32 loads a float32.
func (as *AddressSpace) LoadF32(addr Addr) (float32, error) {
	u, err := as.LoadU32(addr)
	if err != nil {
		return 0, err
	}
	return math.Float32frombits(u), nil
}

// StoreF32 stores a float32.
func (as *AddressSpace) StoreF32(addr Addr, v float32) error {
	return as.StoreU32(addr, math.Float32bits(v))
}

// Raw access (simulator plumbing: setup, recovery, ground-truth checks).

// ReadRaw copies the stored bytes at addr into buf without sensing stuck
// bits, without ECC decoding, and without notifying observers. Tests and
// the outcome classifier use it to inspect ground truth.
func (as *AddressSpace) ReadRaw(addr Addr, buf []byte) error {
	r, err := as.locate(addr, len(buf))
	if err != nil {
		return err
	}
	r.copyStored(buf, int(addr-r.base))
	return nil
}

// WriteRaw writes bytes at addr bypassing the read-only flag and access
// observers, re-encoding check storage so protected regions stay
// consistent. Region initialization (loading an index into a read-only
// cache) and software recovery use it.
func (as *AddressSpace) WriteRaw(addr Addr, data []byte) error {
	r, err := as.locate(addr, len(data))
	if err != nil {
		return err
	}
	off := int(addr - r.base)
	if r.codec == nil {
		r.writeBytes(off, data)
		return nil
	}
	// Widen to whole codewords so re-encoding is well defined; the
	// untouched bytes keep their stored (possibly erroneous) values.
	// Every touched word goes back through a full Encode, so afterwards
	// it provably satisfies the taint invariant — decodes clean — unless
	// stuck-at state covers it, and its taint bit is cleared
	// accordingly. Untouched words keep whatever errors (and taint
	// bits) they had. A future raw write path that skips the re-encode
	// must taint the covered words instead.
	w := r.codec.WordBytes()
	c := r.codec.CheckBytes()
	first := off / w * w
	last := (off + len(data) + w - 1) / w * w
	ps := as.pageSize
	// The shared word scratch doubles as the widening buffer.
	wide, check, owned := as.acquireScratch(last-first, c)
	defer as.releaseScratch(owned)
	r.copyStored(wide, first)
	copy(wide[off-first:], data)
	for wo := first; wo < last; wo += w {
		word := wide[wo-first : wo-first+w]
		r.codec.Encode(word, check)
		pi := wo / ps
		r.markDirty(pi)
		p := r.pages[pi]
		inPage := wo % ps
		wordIdx := inPage / w
		copy(p.data[inPage:inPage+w], word)
		copy(p.check[wordIdx*c:(wordIdx+1)*c], check)
		if p.anyTaint && !p.stuckInRange(inPage, inPage+w) {
			r.clearWordTaint(pi, wordIdx)
		}
	}
	return nil
}

// Error injection (the Algorithm 1(a) primitive).

// FlipBit flips one stored data bit: bit index 0..7 within the byte at
// addr. It models a soft error: the flip is persistent until the byte is
// overwritten, invisible to ECC until the word is next decoded, and does
// not notify observers.
func (as *AddressSpace) FlipBit(addr Addr, bit int) error {
	if bit < 0 || bit > 7 {
		return fmt.Errorf("simmem: bit index %d out of range [0,7]", bit)
	}
	r, err := as.locate(addr, 1)
	if err != nil {
		return err
	}
	off := int(addr - r.base)
	pi := off / as.pageSize
	if r.codec != nil {
		// The flip can surface on the next decode of its codeword; the
		// rest of the page is untouched.
		r.taintWord(pi, r.wordIndex(off))
	} else {
		// An unprotected region has nothing to decode: sensed bytes equal
		// stored bytes (no stuck-at state is involved in a soft flip), so
		// the invariant still holds and the fast bulk copy returns the
		// flipped byte exactly as per-byte sensing would. Only the data
		// mutation needs recording for snapshot rollback.
		r.markDirty(pi)
	}
	r.pages[pi].data[off%as.pageSize] ^= 1 << bit
	return nil
}

// FlipCheckBit flips one stored check bit of the codeword containing addr
// (bit counts across the word's check bytes, LSB-first). It returns an
// error for unprotected regions.
func (as *AddressSpace) FlipCheckBit(addr Addr, bit int) error {
	r, err := as.locate(addr, 1)
	if err != nil {
		return err
	}
	if r.codec == nil {
		return fmt.Errorf("simmem: region %q has no check storage", r.name)
	}
	c := r.codec.CheckBytes()
	if bit < 0 || bit >= c*8 {
		return fmt.Errorf("simmem: check bit %d out of range [0,%d)", bit, c*8)
	}
	w := r.codec.WordBytes()
	off := int(addr-r.base) / w * w
	pi := off / as.pageSize
	wordIdx := (off % as.pageSize) / w
	r.taintWord(pi, wordIdx)
	r.pages[pi].check[wordIdx*c+bit/8] ^= 1 << (bit % 8)
	return nil
}

// StickBit installs a stuck-at fault on one data bit: the cell will sense
// as value (0 or 1) regardless of what is stored, modelling a hard error.
// Overwrites do not clear it; only frame replacement (page retirement)
// does.
func (as *AddressSpace) StickBit(addr Addr, bit, value int) error {
	if bit < 0 || bit > 7 {
		return fmt.Errorf("simmem: bit index %d out of range [0,7]", bit)
	}
	if value != 0 && value != 1 {
		return fmt.Errorf("simmem: stuck value must be 0 or 1, got %d", value)
	}
	r, err := as.locate(addr, 1)
	if err != nil {
		return err
	}
	off := int(addr - r.base)
	pi := off / as.pageSize
	// A stuck cell makes sensing diverge from storage, so the covering
	// granule leaves the fast path (in any region kind) until frame
	// replacement discards the fault.
	r.taintWord(pi, r.wordIndex(off))
	p := r.pages[pi]
	i := off % as.pageSize
	mask := byte(1) << bit
	if value == 1 {
		if p.stuckSet == nil {
			p.stuckSet = make([]byte, as.pageSize)
		}
		p.stuckSet[i] |= mask
		if p.stuckClr != nil {
			p.stuckClr[i] &^= mask
		}
	} else {
		if p.stuckClr == nil {
			p.stuckClr = make([]byte, as.pageSize)
		}
		p.stuckClr[i] |= mask
		if p.stuckSet != nil {
			p.stuckSet[i] &^= mask
		}
	}
	return nil
}

// ReplaceFrame models OS page retirement: the page's frame is replaced by a
// fresh one, clearing stuck-at faults and corrected-error counters. The new
// frame is filled from the region's backing store if it has one, and zeroed
// otherwise; check storage is re-encoded.
func (r *Region) ReplaceFrame(pageIdx int) error {
	if pageIdx < 0 || pageIdx >= len(r.pages) {
		return fmt.Errorf("simmem: page %d out of range [0,%d)", pageIdx, len(r.pages))
	}
	// Frame replacement is a corruption channel for taint purposes:
	// the incoming frame's contents come from outside the encoded
	// store path, so the page is tainted for the duration of the swap …
	r.taintPage(pageIdx)
	p := r.pages[pageIdx]
	p.stuckSet = nil
	p.stuckClr = nil
	p.corrected = 0
	p.replaced++
	ps := r.as.pageSize
	if r.backing != nil {
		copy(p.data, r.backing[pageIdx*ps:(pageIdx+1)*ps])
	} else {
		for i := range p.data {
			p.data[i] = 0
		}
	}
	if r.codec != nil {
		w := r.codec.WordBytes()
		c := r.codec.CheckBytes()
		check, _, owned := r.as.acquireScratch(c, 0)
		defer r.as.releaseScratch(owned)
		for wo := 0; wo < ps; wo += w {
			r.codec.Encode(p.data[wo:wo+w], check)
			copy(p.check[wo/w*c:(wo/w+1)*c], check)
		}
	}
	// … and verifiably clean once it completes: the stuck-at state is
	// gone and every word just went through a full re-encode (an
	// unprotected frame is trivially clean — sensed bytes equal stored
	// bytes with no masks). Note the replacement can still launder a
	// semantically wrong backing copy into valid codewords; taint tracks
	// decode visibility, not ground truth, which the outcome classifier
	// checks against raw bytes.
	r.clearPageTaint(pageIdx)
	return nil
}

// Backing-store (persistent storage) operations.

// FlushPage copies page i's current stored bytes to the backing store —
// one step of a periodic checkpoint (the Par+R five-minute flush).
func (r *Region) FlushPage(i int) error {
	if r.backing == nil {
		return fmt.Errorf("simmem: region %q has no backing store", r.name)
	}
	if i < 0 || i >= len(r.pages) {
		return fmt.Errorf("simmem: page %d out of range [0,%d)", i, len(r.pages))
	}
	ps := r.as.pageSize
	// The backing store is snapshotted too, so flushing dirties the page.
	r.markDirty(i)
	copy(r.backing[i*ps:(i+1)*ps], r.pages[i].data)
	return nil
}

// FlushAll checkpoints every page to the backing store.
func (r *Region) FlushAll() error {
	for i := range r.pages {
		if err := r.FlushPage(i); err != nil {
			return err
		}
	}
	return nil
}

// RestoreWord reloads the codeword (or single byte, for unprotected
// regions) containing addr from the backing store and re-encodes its check
// storage. Par+R recovery calls this after a parity detection.
func (r *Region) RestoreWord(addr Addr) error {
	if r.backing == nil {
		return fmt.Errorf("simmem: region %q has no backing store", r.name)
	}
	if !r.Contains(addr) {
		return &Fault{Kind: FaultOutOfRange, Addr: addr}
	}
	w := 1
	if r.codec != nil {
		w = r.codec.WordBytes()
	}
	off := int(addr-r.base) / w * w
	// WriteRaw re-encodes the restored word and clears its taint bit
	// when no stuck-at state covers it; the rest of the page's taint
	// state is per-word and unaffected, so no whole-page verification
	// is needed — a page whose only error was just repaired returns to
	// the fully-fast path immediately.
	return r.as.WriteRaw(r.base+Addr(off), r.backing[off:off+w])
}

// BackingBytes returns the clean persistent copy of the byte range
// [addr, addr+n), for recoverability verification in tests.
func (r *Region) BackingBytes(addr Addr, n int) ([]byte, error) {
	if r.backing == nil {
		return nil, fmt.Errorf("simmem: region %q has no backing store", r.name)
	}
	off := int(addr - r.base)
	if !r.Contains(addr) || off+n > r.size {
		return nil, &Fault{Kind: FaultOutOfRange, Addr: addr}
	}
	out := make([]byte, n)
	copy(out, r.backing[off:off+n])
	return out, nil
}

// ScrubPage decodes every codeword of page i like a background memory
// scrubber: corrected patterns are optionally written back, uncorrectable
// patterns are counted but raise no machine check (scrubbers log and move
// on). It emits no access or ECC events and returns the counts. Scrubbing
// an unprotected region reports zeroes — without a code there is nothing
// to detect (the paper's §VI-C suggests memtest-style scans for such
// regions, which compare against known patterns instead; see the recovery
// package).
func (r *Region) ScrubPage(i int, writeBack bool) (corrected, uncorrectable int, err error) {
	if i < 0 || i >= len(r.pages) {
		return 0, 0, fmt.Errorf("simmem: page %d out of range [0,%d)", i, len(r.pages))
	}
	if r.codec == nil {
		// Without a code there is nothing to decode, but absent
		// stuck-at state an unprotected granule trivially satisfies the
		// taint invariant (sensing is a plain copy), so the scan
		// re-admits every stuck-free granule to the fast path.
		p := r.pages[i]
		if !p.hasStuck() {
			r.clearPageTaint(i)
		} else if p.anyTaint {
			g := r.granule
			for wi := 0; wi < r.wordsPerPage; wi++ {
				if p.wordTainted(wi) && !p.stuckInRange(wi*g, (wi+1)*g) {
					r.clearWordTaint(i, wi)
				}
			}
		}
		return 0, 0, nil
	}
	p := r.pages[i]
	w := r.codec.WordBytes()
	c := r.codec.CheckBytes()
	ps := r.as.pageSize
	word, check, owned := r.as.acquireScratch(w, c)
	defer r.as.releaseScratch(owned)
	for wo := 0; wo < ps; wo += w {
		for k := 0; k < w; k++ {
			word[k] = p.senseByte(wo + k)
		}
		wordIdx := wo / w
		copy(check, p.check[wordIdx*c:(wordIdx+1)*c])
		switch r.codec.Decode(word, check) {
		case VerdictClean:
			// The scrub just proved this word's taint invariant — as
			// long as no stuck-at state covers it (a stuck cell that
			// happens to match storage today can diverge after the next
			// store).
			if p.wordTainted(wordIdx) && !p.stuckInRange(wo, wo+w) {
				r.clearWordTaint(i, wordIdx)
			}
		case VerdictCorrected:
			corrected++
			r.markDirty(i)
			p.corrected++
			if writeBack {
				copy(p.data[wo:wo+w], word)
				copy(p.check[wordIdx*c:(wordIdx+1)*c], check)
				// The written-back word now stores what it decodes to,
				// so it rejoins the fast path unless stuck-at state
				// keeps sensing divergent. Corrections left un-written
				// keep their erroneous stored bytes and stay tainted.
				if !p.stuckInRange(wo, wo+w) {
					r.clearWordTaint(i, wordIdx)
				}
			}
		case VerdictUncorrectable:
			uncorrectable++
		}
	}
	return corrected, uncorrectable, nil
}

// SampleAddr picks a uniformly random used byte address across the regions
// accepted by filter (all regions when filter is nil), weighting regions by
// their used sizes — the paper's "randomly select a valid byte-aligned
// application memory address". It returns false when no accepted region
// has any used bytes.
func (as *AddressSpace) SampleAddr(rng *rand.Rand, filter func(*Region) bool) (Addr, bool) {
	total := 0
	for _, r := range as.regions {
		if filter == nil || filter(r) {
			total += r.used
		}
	}
	if total == 0 {
		return 0, false
	}
	n := rng.Intn(total)
	for _, r := range as.regions {
		if filter != nil && !filter(r) {
			continue
		}
		if n < r.used {
			return r.base + Addr(n), true
		}
		n -= r.used
	}
	// Unreachable: the weights sum to total.
	return 0, false
}
