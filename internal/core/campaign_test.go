package core

import (
	"strings"
	"testing"
	"time"

	"hrmsim/internal/apps"
	"hrmsim/internal/apps/kvstore"
	"hrmsim/internal/apps/websearch"
	"hrmsim/internal/faults"
	"hrmsim/internal/obsv"
	"hrmsim/internal/simmem"
)

func wsBuilder(t *testing.T, seed int64) apps.Builder {
	t.Helper()
	cfg := websearch.DefaultConfig(seed)
	cfg.Docs = 256
	cfg.Vocab = 128
	cfg.MinTerms = 4
	cfg.MaxTerms = 12
	cfg.Queries = 40
	cfg.CacheSlots = 32
	b, err := websearch.NewBuilder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func kvBuilder(t *testing.T, seed int64) apps.Builder {
	t.Helper()
	cfg := kvstore.DefaultConfig(seed)
	cfg.Keys = 128
	cfg.Ops = 200
	b, err := kvstore.NewBuilder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestGoldenRun(t *testing.T) {
	g, err := GoldenRun(wsBuilder(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 40 {
		t.Fatalf("golden length = %d, want 40", len(g))
	}
}

func TestRunCampaignBasic(t *testing.T) {
	res, err := Run(CampaignConfig{
		Builder: wsBuilder(t, 2),
		Spec:    faults.SingleBitSoft,
		Trials:  60,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 60 {
		t.Fatalf("got %d trials", len(res.Trials))
	}
	if res.App != "websearch" {
		t.Errorf("app = %q", res.App)
	}
	// Outcome counts partition the trials.
	total := 0
	for _, o := range []Outcome{OutcomeCrash, OutcomeIncorrect, OutcomeMaskedOverwrite,
		OutcomeMaskedLogic, OutcomeMaskedLatent} {
		total += res.Count(o)
	}
	if total != 60 {
		t.Errorf("outcome counts sum to %d, want 60", total)
	}
	// Fractions sum to 1.
	var sum float64
	for _, f := range res.OutcomeFractions() {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum to %g", sum)
	}
	p, err := res.CrashProbability(0.90)
	if err != nil {
		t.Fatal(err)
	}
	if p.Trials != 60 {
		t.Errorf("crash proportion trials = %d", p.Trials)
	}
	tol, err := res.ToleratedProbability(0.90)
	if err != nil {
		t.Fatal(err)
	}
	if p.P+tol.P > 1.0001 {
		t.Error("crash + tolerated exceed 1")
	}
}

func TestCampaignDeterministicAcrossParallelism(t *testing.T) {
	run := func(par int) *CampaignResult {
		res, err := Run(CampaignConfig{
			Builder:     wsBuilder(t, 3),
			Spec:        faults.SingleBitHard,
			Trials:      30,
			Seed:        99,
			Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(4)
	for i := range a.Trials {
		if a.Trials[i].Outcome != b.Trials[i].Outcome ||
			a.Trials[i].Region != b.Trials[i].Region ||
			a.Trials[i].Incorrect != b.Trials[i].Incorrect {
			t.Fatalf("trial %d differs between parallelism 1 and 4:\n%+v\n%+v",
				i, a.Trials[i], b.Trials[i])
		}
	}
}

func TestCampaignRegionFilter(t *testing.T) {
	res, err := Run(CampaignConfig{
		Builder: wsBuilder(t, 4),
		Spec:    faults.SingleBitSoft,
		Trials:  25,
		Seed:    5,
		Filter:  func(r *simmem.Region) bool { return r.Kind() == simmem.RegionHeap },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range res.Trials {
		if tr.Kind != simmem.RegionHeap {
			t.Fatalf("trial %d injected into %v", i, tr.Kind)
		}
	}
}

func TestCampaignGoldenReuse(t *testing.T) {
	b := wsBuilder(t, 6)
	golden, err := GoldenRun(b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(CampaignConfig{
		Builder: b,
		Spec:    faults.SingleBitSoft,
		Trials:  10,
		Seed:    1,
		Golden:  golden,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Golden) != len(golden) {
		t.Error("golden not retained")
	}
}

func TestCampaignWarmup(t *testing.T) {
	res, err := Run(CampaignConfig{
		Builder: kvBuilder(t, 7),
		Spec:    faults.SingleBitSoft,
		Trials:  10,
		Seed:    2,
		Warmup:  50,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range res.Trials {
		if tr.InjectedAt == 0 {
			t.Fatalf("trial %d injected at time zero despite warmup", i)
		}
	}
}

func TestCampaignValidation(t *testing.T) {
	b := kvBuilder(t, 8)
	if _, err := Run(CampaignConfig{Spec: faults.SingleBitSoft, Trials: 1}); err == nil {
		t.Error("nil builder accepted")
	}
	if _, err := Run(CampaignConfig{Builder: b, Spec: faults.SingleBitSoft}); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := Run(CampaignConfig{Builder: b, Spec: faults.Spec{}, Trials: 1}); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := Run(CampaignConfig{Builder: b, Spec: faults.SingleBitSoft, Trials: 1, Warmup: -1}); err == nil {
		t.Error("negative warmup accepted")
	}
	if _, err := Run(CampaignConfig{Builder: b, Spec: faults.SingleBitSoft, Trials: 1, Warmup: 10000}); err == nil {
		t.Error("oversized warmup accepted")
	}
}

func TestHardErrorsCrashMoreOrEqual(t *testing.T) {
	// Hard errors persist, so across identical trial counts they should
	// cause at least as many bad outcomes (crash+incorrect) as soft
	// errors in the read-mostly private region.
	b := wsBuilder(t, 9)
	golden, err := GoldenRun(b)
	if err != nil {
		t.Fatal(err)
	}
	filter := func(r *simmem.Region) bool { return r.Kind() == simmem.RegionPrivate }
	soft, err := Run(CampaignConfig{Builder: b, Spec: faults.SingleBitSoft, Trials: 80, Seed: 11, Filter: filter, Golden: golden})
	if err != nil {
		t.Fatal(err)
	}
	hard, err := Run(CampaignConfig{Builder: b, Spec: faults.DoubleBitHard, Trials: 80, Seed: 11, Filter: filter, Golden: golden})
	if err != nil {
		t.Fatal(err)
	}
	badSoft := soft.Count(OutcomeCrash) + soft.Count(OutcomeIncorrect)
	badHard := hard.Count(OutcomeCrash) + hard.Count(OutcomeIncorrect)
	if badHard < badSoft {
		t.Errorf("2-bit hard errors caused fewer bad outcomes (%d) than 1-bit soft (%d)",
			badHard, badSoft)
	}
}

func TestIncorrectPerBillion(t *testing.T) {
	res := &CampaignResult{
		Trials: []TrialResult{
			{Requests: 100, Incorrect: 1},
			{Requests: 100, Incorrect: 0},
			{Requests: 0},
		},
		counts: map[Outcome]int{},
	}
	mean, max := res.IncorrectPerBillion()
	if mean != 1.0/200*1e9 {
		t.Errorf("mean = %g", mean)
	}
	if max != 1.0/100*1e9 {
		t.Errorf("max = %g", max)
	}
}

func TestTimesToEffectAndOutcomeStrings(t *testing.T) {
	res := &CampaignResult{
		Trials: []TrialResult{
			{Outcome: OutcomeCrash, InjectedAt: time.Minute, EffectAt: 3 * time.Minute},
			{Outcome: OutcomeIncorrect, InjectedAt: time.Minute, EffectAt: 11 * time.Minute},
			{Outcome: OutcomeMaskedLogic},
		},
		counts: map[Outcome]int{OutcomeCrash: 1, OutcomeIncorrect: 1, OutcomeMaskedLogic: 1},
	}
	crashTimes := res.TimesToEffect(OutcomeCrash)
	if len(crashTimes) != 1 || crashTimes[0] != 2 {
		t.Errorf("crash times = %v, want [2]", crashTimes)
	}
	if got := res.TimesToEffect(OutcomeMaskedLogic); len(got) != 0 {
		t.Errorf("masked times = %v", got)
	}

	for _, o := range Outcomes() {
		if o.String() == "" || strings.HasPrefix(o.String(), "outcome(") {
			t.Errorf("missing name for outcome %d", int(o))
		}
		if strings.Contains(o.MetricName(), "-") {
			t.Errorf("metric name %q not sanitized", o.MetricName())
		}
	}
	if !OutcomeMaskedOverwrite.Tolerated() || OutcomeCrash.Tolerated() || OutcomeIncorrect.Tolerated() {
		t.Error("Tolerated classification wrong")
	}
}

func TestMeanHorizonSpansWholeRun(t *testing.T) {
	// Pins the documented MeanHorizon semantics: crashed trials are
	// observed until the crash, completed trials for the span of the
	// whole run, and every trial contributes — not just crash/incorrect.
	res := &CampaignResult{
		Trials: []TrialResult{
			// Crashed 2 minutes after injection: horizon 2m.
			{Outcome: OutcomeCrash, InjectedAt: time.Minute,
				EffectAt: 3 * time.Minute, EndedAt: 3 * time.Minute},
			// First wrong answer at 11m but the run continued to 21m:
			// horizon is the full 20m span, not the 10m time-to-effect.
			{Outcome: OutcomeIncorrect, InjectedAt: time.Minute,
				EffectAt: 11 * time.Minute, EndedAt: 21 * time.Minute},
			// Masked trial still contributes its full 14m span.
			{Outcome: OutcomeMaskedLogic, InjectedAt: time.Minute,
				EndedAt: 15 * time.Minute},
			// No end timestamp (legacy literal): skipped.
			{Outcome: OutcomeIncorrect, InjectedAt: time.Minute,
				EffectAt: 2 * time.Minute},
		},
		counts: map[Outcome]int{OutcomeCrash: 1, OutcomeIncorrect: 2, OutcomeMaskedLogic: 1},
	}
	if got := res.MeanHorizon(); got != 12*time.Minute {
		t.Errorf("mean horizon = %v, want 12m", got)
	}
	if got := (&CampaignResult{}).MeanHorizon(); got != 0 {
		t.Errorf("empty mean horizon = %v", got)
	}
}

func TestCampaignSetsEndedAt(t *testing.T) {
	res, err := Run(CampaignConfig{
		Builder: wsBuilder(t, 12),
		Spec:    faults.SingleBitHard,
		Trials:  30,
		Seed:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range res.Trials {
		if tr.EndedAt <= tr.InjectedAt {
			t.Fatalf("trial %d: EndedAt %v not after InjectedAt %v", i, tr.EndedAt, tr.InjectedAt)
		}
		if tr.EffectAt != 0 && tr.EndedAt < tr.EffectAt {
			t.Fatalf("trial %d: EndedAt %v before EffectAt %v", i, tr.EndedAt, tr.EffectAt)
		}
	}
	if res.MeanHorizon() <= 0 {
		t.Errorf("mean horizon = %v", res.MeanHorizon())
	}
}

func TestClassify(t *testing.T) {
	tests := []struct {
		crashed   bool
		incorrect int
		first     firstAccessKind
		want      Outcome
	}{
		{true, 0, firstLoad, OutcomeCrash},
		{true, 3, firstLoad, OutcomeCrash},
		{false, 2, firstLoad, OutcomeIncorrect},
		{false, 0, firstStore, OutcomeMaskedOverwrite},
		{false, 0, firstLoad, OutcomeMaskedLogic},
		{false, 0, firstNone, OutcomeMaskedLatent},
	}
	for i, tt := range tests {
		if got := classify(tt.crashed, tt.incorrect, tt.first); got != tt.want {
			t.Errorf("case %d: classify = %v, want %v", i, got, tt.want)
		}
	}
}

func TestAccessTracker(t *testing.T) {
	tr := newAccessTracker([]simmem.Addr{100, 200})
	tr.ObserveAccess(simmem.AccessEvent{Addr: 50, Len: 10, Kind: simmem.Load})
	if tr.first != firstNone {
		t.Error("non-covering access recorded")
	}
	tr.ObserveAccess(simmem.AccessEvent{Addr: 95, Len: 10, Kind: simmem.Store})
	if tr.first != firstStore {
		t.Error("covering store not recorded")
	}
	// First access is sticky.
	tr.ObserveAccess(simmem.AccessEvent{Addr: 200, Len: 1, Kind: simmem.Load})
	if tr.first != firstStore {
		t.Error("first access overwritten")
	}
}

func TestTrialSeedDecorrelated(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := trialSeed(42, i)
		if seen[s] {
			t.Fatalf("duplicate trial seed at %d", i)
		}
		seen[s] = true
	}
}

func TestAllIncorrectTimes(t *testing.T) {
	res := &CampaignResult{
		Trials: []TrialResult{
			{InjectedAt: time.Minute, IncorrectAt: []time.Duration{2 * time.Minute, 5 * time.Minute}},
			{InjectedAt: 0, IncorrectAt: []time.Duration{10 * time.Minute}},
			{InjectedAt: 0},
		},
		counts: map[Outcome]int{},
	}
	got := res.AllIncorrectTimes()
	want := []float64{1, 4, 10}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sample %d = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestCampaignProgressAndMetrics(t *testing.T) {
	reg := obsv.NewRegistry()
	var calls []int
	var last ProgressInfo
	res, err := Run(CampaignConfig{
		Builder:     kvBuilder(t, 13),
		Spec:        faults.SingleBitSoft,
		Trials:      24,
		Seed:        5,
		Parallelism: 4,
		Progress: func(p ProgressInfo) {
			if p.Total != 24 {
				t.Errorf("progress total = %d", p.Total)
			}
			if p.TrialsPerSec < 0 || p.ETA < 0 || p.Elapsed < 0 {
				t.Errorf("negative progress rate fields: %+v", p)
			}
			calls = append(calls, p.Done)
			last = p
		},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Progress calls are serialized and strictly increasing 1..Trials.
	if len(calls) != 24 {
		t.Fatalf("progress called %d times", len(calls))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress calls not monotonic: %v", calls)
		}
	}
	// The final call has no remaining work and real per-trial averages.
	if last.ETA != 0 {
		t.Errorf("final ETA = %v, want 0", last.ETA)
	}
	if last.MeanTrialVirtualMinutes <= 0 {
		t.Errorf("final MeanTrialVirtualMinutes = %g", last.MeanTrialVirtualMinutes)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["campaign_trials_total"]; got != 24 {
		t.Errorf("campaign_trials_total = %d", got)
	}
	var outcomeSum int64
	for _, o := range Outcomes() {
		n := snap.Counters["campaign_outcome_"+o.MetricName()]
		if n != int64(res.Count(o)) {
			t.Errorf("campaign_outcome_%s = %d, want %d", o.MetricName(), n, res.Count(o))
		}
		outcomeSum += n
	}
	if outcomeSum != 24 {
		t.Errorf("outcome counters sum to %d", outcomeSum)
	}
	var requests, incorrect int64
	for _, tr := range res.Trials {
		requests += int64(tr.Requests)
		incorrect += int64(tr.Incorrect)
	}
	if got := snap.Counters["campaign_requests_total"]; got != requests {
		t.Errorf("campaign_requests_total = %d, want %d", got, requests)
	}
	if got := snap.Counters["campaign_incorrect_responses_total"]; got != incorrect {
		t.Errorf("campaign_incorrect_responses_total = %d, want %d", got, incorrect)
	}
	for _, name := range []string{"campaign_trial_wall_ms", "campaign_trial_virtual_minutes"} {
		h, ok := snap.Histograms[name]
		if !ok || h.Count != 24 {
			t.Errorf("%s: %+v", name, h)
		}
	}
}

func TestCampaignMetricsDoNotChangeResults(t *testing.T) {
	run := func(reg *obsv.Registry) *CampaignResult {
		res, err := Run(CampaignConfig{
			Builder: wsBuilder(t, 14),
			Spec:    faults.SingleBitSoft,
			Trials:  20,
			Seed:    6,
			Metrics: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, instrumented := run(nil), run(obsv.NewRegistry())
	for i := range plain.Trials {
		a, b := plain.Trials[i], instrumented.Trials[i]
		if a.Outcome != b.Outcome || a.Region != b.Region ||
			a.Incorrect != b.Incorrect || a.EndedAt != b.EndedAt {
			t.Fatalf("trial %d differs with instrumentation:\n%+v\n%+v", i, a, b)
		}
	}
}

func TestCampaignRecordsIncorrectOccurrences(t *testing.T) {
	// Hard errors in the read-mostly private region produce repeated
	// incorrect responses whose times spread over the run.
	res, err := Run(CampaignConfig{
		Builder: wsBuilder(t, 10),
		Spec:    faults.SingleBitHard,
		Trials:  60,
		Seed:    3,
		Filter:  func(r *simmem.Region) bool { return r.Kind() == simmem.RegionPrivate },
	})
	if err != nil {
		t.Fatal(err)
	}
	all := res.AllIncorrectTimes()
	first := res.TimesToEffect(OutcomeIncorrect)
	if len(all) < len(first) {
		t.Errorf("all occurrences (%d) fewer than first-effects (%d)", len(all), len(first))
	}
	for _, x := range all {
		if x < 0 {
			t.Fatalf("negative occurrence time %g", x)
		}
	}
}
