package websearch

import (
	"testing"

	"hrmsim/internal/simmem"
)

func TestServeWithResultsMatchesServe(t *testing.T) {
	cfg := smallConfig(30)
	b, err := NewBuilder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ws1 := a1.(*App)
	for i := 0; i < ws1.NumRequests(); i++ {
		r1, results, err := ws1.ServeWithResults(i)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		r2, err := a2.Serve(i)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if r1.Digest != r2.Digest {
			t.Fatalf("request %d digests differ", i)
		}
		if len(results) > 4 {
			t.Fatalf("request %d returned %d results", i, len(results))
		}
		for _, r := range results {
			if int(r.ID) >= cfg.Docs {
				t.Fatalf("request %d result ID %d out of range", i, r.ID)
			}
		}
		// Results are sorted by descending base relevance in the frame;
		// after popularity re-ranking, scores must at least be finite
		// and positive.
		for _, r := range results {
			if !(r.Score > 0) {
				t.Fatalf("request %d score %g", i, r.Score)
			}
		}
	}
}

func TestQuerySeedSharesQueryStream(t *testing.T) {
	cfg1 := smallConfig(31)
	cfg1.QuerySeed = 999
	cfg2 := smallConfig(32) // different corpus seed
	cfg2.QuerySeed = 999
	b1, err := NewBuilder(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := NewBuilder(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1.queries) != len(b2.queries) {
		t.Fatal("query stream lengths differ")
	}
	for i := range b1.queries {
		if len(b1.queries[i].Terms) != len(b2.queries[i].Terms) {
			t.Fatalf("query %d term counts differ", i)
		}
		for j := range b1.queries[i].Terms {
			if b1.queries[i].Terms[j] != b2.queries[i].Terms[j] {
				t.Fatalf("query %d term %d differs", i, j)
			}
		}
	}
}

func TestCacheModelConfig(t *testing.T) {
	cfg := smallConfig(33)
	cfg.CacheLines = 128
	ref := golden(t, build(t, smallConfig(33)))
	app := build(t, cfg)
	for i := 0; i < app.NumRequests(); i++ {
		resp, err := app.Serve(i)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.Digest != ref[i] {
			t.Fatalf("request %d digest differs with cache model enabled", i)
		}
	}
	h, m, _ := app.Space().CacheStats()
	if h == 0 || m == 0 {
		t.Errorf("cache stats: hits=%d misses=%d", h, m)
	}
	_ = simmem.CacheLineBytes
}
