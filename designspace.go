package hrmsim

import (
	"fmt"

	"hrmsim/internal/design"
)

// DesignRow is one evaluated heterogeneous-reliability design point — one
// row of the paper's Table 6.
type DesignRow struct {
	Name string
	// MemorySavings is the memory cost saving fraction vs an all-ECC
	// server, with the less-tested pricing band.
	MemorySavings, MemorySavingsLo, MemorySavingsHi float64
	// ServerSavings is the server hardware cost saving fraction.
	ServerSavings, ServerSavingsLo, ServerSavingsHi float64
	// CrashesPerMonth is the expected crash rate from memory errors.
	CrashesPerMonth float64
	// Availability is single server availability (0..1).
	Availability float64
	// IncorrectPerMillion is the incorrect-response rate while up.
	IncorrectPerMillion float64
	// MeetsTarget reports whether the 99.90% target is met.
	MeetsTarget bool
}

// RegionVulnerability is a region's measured vulnerability, the input to
// design-space evaluation. Obtain one per region from Characterize (crash
// probability and incorrect rate) or use PaperWebSearchVulnerability.
type RegionVulnerability struct {
	// Region is "private", "heap", or "stack".
	Region Region
	// Share is the region's fraction of application memory.
	Share float64
	// CrashProbability is P(crash | error) unprotected.
	CrashProbability float64
	// IncorrectPerError is incorrect responses per million queries
	// contributed by one resident error.
	IncorrectPerError float64
}

// PaperWebSearchVulnerability returns the WebSearch inputs derived from
// the paper's published characterization, which reproduce Table 6.
func PaperWebSearchVulnerability() []RegionVulnerability {
	var out []RegionVulnerability
	for _, in := range design.PaperWebSearchInputs() {
		out = append(out, RegionVulnerability{
			Region:            Region(in.Name),
			Share:             in.Share,
			CrashProbability:  in.CrashProb,
			IncorrectPerError: in.IncorrectPerErr,
		})
	}
	return out
}

// toInputs converts public vulnerabilities to internal inputs.
func toInputs(vs []RegionVulnerability) []design.RegionInput {
	out := make([]design.RegionInput, 0, len(vs))
	for _, v := range vs {
		out = append(out, design.RegionInput{
			Name:            string(v.Region),
			Share:           v.Share,
			CrashProb:       v.CrashProbability,
			IncorrectPerErr: v.IncorrectPerError,
		})
	}
	return out
}

// EvaluateTable6 evaluates the paper's five design points (Typical
// Server, Consumer PC, Detect&Recover, Less-Tested, Detect&Recover/L)
// over the given region vulnerabilities. Pass
// PaperWebSearchVulnerability() to reproduce the published table.
func EvaluateTable6(vs []RegionVulnerability) ([]DesignRow, error) {
	if len(vs) == 0 {
		return nil, fmt.Errorf("hrmsim: no region vulnerabilities supplied")
	}
	params := design.PaperParams()
	inputs := toInputs(vs)
	var rows []DesignRow
	for _, d := range design.Table6Points() {
		ev, err := design.Evaluate(params, inputs, d)
		if err != nil {
			return nil, err
		}
		rows = append(rows, rowFrom(ev))
	}
	return rows, nil
}

// rowFrom converts an internal evaluation.
func rowFrom(ev design.Evaluation) DesignRow {
	return DesignRow{
		Name:                ev.Name,
		MemorySavings:       ev.MemorySavings,
		MemorySavingsLo:     ev.MemorySavingsLo,
		MemorySavingsHi:     ev.MemorySavingsHi,
		ServerSavings:       ev.ServerSavings,
		ServerSavingsLo:     ev.ServerSavingsLo,
		ServerSavingsHi:     ev.ServerSavingsHi,
		CrashesPerMonth:     ev.CrashesPerMonth,
		Availability:        ev.Availability,
		IncorrectPerMillion: ev.IncorrectPerMillion,
		MeetsTarget:         ev.MeetsTarget,
	}
}

// PlanConfig configures a design-space search: find the cheapest
// heterogeneous mapping that meets an availability target for an
// application with the given measured vulnerabilities.
type PlanConfig struct {
	// Vulnerabilities are the per-region inputs (shares must sum to 1).
	Vulnerabilities []RegionVulnerability
	// TargetAvailability is the single-server goal (default 0.999).
	TargetAvailability float64
	// ErrorsPerMonth overrides the field error rate (default 2000).
	ErrorsPerMonth float64
}

// PlanResult is the outcome of a design-space search.
type PlanResult struct {
	// Best is the cheapest design meeting the target.
	Best DesignRow
	// BestMapping describes the chosen per-region techniques.
	BestMapping map[string]string
	// Considered is the number of design points evaluated.
	Considered int
	// Feasible is the number meeting the target.
	Feasible int
}

// Plan exhaustively searches per-region mappings over {NoECC, Parity+
// recovery, SEC-DED} × {tested, less-tested} and returns the cheapest
// design meeting the availability target — the paper's Fig. 7 workflow as
// an API call.
func Plan(cfg PlanConfig) (*PlanResult, error) {
	if len(cfg.Vulnerabilities) == 0 {
		return nil, fmt.Errorf("hrmsim: PlanConfig.Vulnerabilities is required")
	}
	params := design.PaperParams()
	if cfg.TargetAvailability != 0 {
		params.TargetAvailability = cfg.TargetAvailability
	}
	if cfg.ErrorsPerMonth != 0 {
		params.ErrorsPerMonth = cfg.ErrorsPerMonth
	}
	inputs := toInputs(cfg.Vulnerabilities)
	var regions []string
	for _, in := range inputs {
		regions = append(regions, in.Name)
	}
	points := design.EnumeratePoints(regions,
		design.CandidateTechniques(), []bool{false, true})
	var evals []design.Evaluation
	byName := make(map[string]design.DesignPoint, len(points))
	for _, d := range points {
		ev, err := design.Evaluate(params, inputs, d)
		if err != nil {
			return nil, err
		}
		evals = append(evals, ev)
		byName[d.Name] = d
	}
	frontier := design.Frontier(evals)
	if len(frontier) == 0 {
		return nil, fmt.Errorf("hrmsim: no design meets availability target %.4f", params.TargetAvailability)
	}
	best := frontier[0]
	mapping := make(map[string]string)
	for region, m := range byName[best.Name].Regions {
		label := m.Technique.String()
		if m.Technique.String() == "Parity" && m.Response == design.RespCorrect {
			label = "Parity+R"
		}
		if m.LessTested {
			label += "/less-tested"
		}
		mapping[region] = label
	}
	return &PlanResult{
		Best:        rowFrom(best),
		BestMapping: mapping,
		Considered:  len(points),
		Feasible:    len(frontier),
	}, nil
}

// Tolerable returns the maximum memory errors per month an application
// with the given overall crash probability can sustain unprotected while
// meeting an availability target (the Fig. 8 analysis).
func Tolerable(crashProbability, targetAvailability float64) (float64, error) {
	return design.TolerableErrors(design.PaperParams(), crashProbability, targetAvailability)
}

// PaperCrashProbabilities returns the per-application overall crash
// probabilities the paper's Fig. 8 analysis uses.
func PaperCrashProbabilities() map[string]float64 {
	return design.PaperAppOverallCrashProb()
}
