module hrmsim

go 1.24
