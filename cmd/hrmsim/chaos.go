// The chaos subcommand: a live-traffic chaos experiment against a kvserve
// node — self-hosted in-process by default, or an external process via
// -attach. See internal/chaos for the experiment model and EXPERIMENTS.md
// ("Chaos: errors under live traffic") for a walkthrough.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hrmsim/internal/chaos"
	"hrmsim/internal/kvnode"
	"hrmsim/internal/obsv"
)

func cmdChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	// Node (self-hosted mode; ignored with -attach).
	eccName := fs.String("ecc", "none", "heap protection of the self-hosted node: none|parity|secded|chipkill")
	recoverMode := fs.String("recover", "",
		"software recovery of the self-hosted node: parr|parr-page|parr-escalate|retire (empty = none)")
	retireThreshold := fs.Uint64("retire-threshold", 2,
		"corrected errors per page before -recover retire replaces the frame")
	checkpoint := fs.Duration("checkpoint", 0,
		"virtual-time interval between heap checkpoints of the self-hosted node (needs -recover)")
	keys := fs.Int("keys", 1024, "working-set size (must match the server's -keys with -attach)")
	attach := fs.String("attach", "",
		"drive an already-running kvserve at this address instead of self-hosting (injection uses the protocol's `inject soft`)")

	// Load profile.
	conns := fs.Int("conns", 32, "concurrent load connections")
	qps := fs.Float64("qps", 0, "aggregate target ops/s (0 = closed loop)")
	readFraction := fs.Float64("read-fraction", 0.9, "GET share of the op mix")
	zipfS := fs.Float64("zipf-s", 1.1, "Zipf key-popularity exponent (> 1)")
	valueSize := fs.Int("value-size", 64, "value size in bytes (must match the server with -attach)")
	opTimeout := fs.Duration("op-timeout", 2*time.Second, "per-op round-trip deadline")

	// Experiment shape.
	steady := fs.Duration("steady", 2*time.Second, "steady-state baseline phase length")
	chaosDur := fs.Duration("chaos", 3*time.Second, "fault-injection phase length")
	recoveryDur := fs.Duration("recovery", 2*time.Second, "recovery observation phase length")
	sampleEvery := fs.Duration("sample-every", 50*time.Millisecond, "probe sample cadence")
	injections := fs.Int("injections", 32, "faults injected across the chaos phase")
	injectMode := fs.String("inject-mode", "hot",
		"self-hosted fault placement: hot (round-robin over popular keys' value words) | random")

	// Objectives.
	p50SLO := fs.Float64("p50-slo-us", 50_000, "steady-state p50 latency objective (µs)")
	p99SLO := fs.Float64("p99-slo-us", 200_000, "steady-state p99 latency objective (µs)")
	expectRecovery := fs.Bool("expect-recovery", false,
		"require recovery activity during chaos+recovery (defaults on when -recover is set)")

	seed := fs.Int64("seed", 1, "experiment seed (node population, load mix, injection placement)")
	jsonOut := fs.Bool("json", false, "emit the verdict as a JSON envelope")
	strict := fs.Bool("strict", false, "exit non-zero when the verdict is FAIL (output is still emitted)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := obsv.NewRegistry()
	addr := *attach
	var injector chaos.Injector
	probeInjected := false

	// Self-hosted mode: run the kvnode in-process on a loopback port so
	// the whole experiment is one seeded command.
	if *attach == "" {
		srv, err := kvnode.New(kvnode.Config{
			Keys:            *keys,
			ECC:             *eccName,
			Seed:            *seed,
			Recover:         *recoverMode,
			RetireThreshold: *retireThreshold,
			CheckpointEvery: *checkpoint,
			Registry:        reg,
		})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srvCtx, stopSrv := context.WithCancel(context.Background())
		srvDone := make(chan error, 1)
		go func() { srvDone <- srv.Serve(srvCtx, ln) }()
		defer func() {
			stopSrv()
			<-srvDone
		}()
		addr = ln.Addr().String()

		li, err := chaos.NewLocalInjector(srv, *injectMode, nil, *seed)
		if err != nil {
			return err
		}
		injector = li
		probeInjected = *injectMode == "hot"
		if *recoverMode != "" {
			*expectRecovery = true
		}
	} else {
		ri, err := chaos.NewRemoteInjector(addr)
		if err != nil {
			return fmt.Errorf("attaching to %s: %w", addr, err)
		}
		defer ri.Close()
		injector = ri
	}

	gen, err := chaos.NewGenerator(chaos.GenConfig{
		Addr:         addr,
		Conns:        *conns,
		QPS:          *qps,
		Keys:         *keys,
		ValueSize:    *valueSize,
		ReadFraction: *readFraction,
		ZipfS:        *zipfS,
		Seed:         *seed,
		OpTimeout:    *opTimeout,
		Registry:     reg,
	})
	if err != nil {
		return err
	}
	exp, err := chaos.NewExperiment(chaos.ExperimentConfig{
		Name:          experimentName(*eccName, *recoverMode, *attach),
		Addr:          addr,
		Steady:        *steady,
		Chaos:         *chaosDur,
		Recovery:      *recoveryDur,
		SampleEvery:   *sampleEvery,
		Injections:    *injections,
		Injector:      injector,
		ProbeInjected: probeInjected,
		SLOs:          chaos.DefaultSLOs(*p50SLO, *p99SLO, *expectRecovery),
		Generator:     gen,
		Registry:      reg,
		Seed:          *seed,
	})
	if err != nil {
		return err
	}

	verdict, err := exp.Run(ctx)
	if err != nil {
		return err
	}
	if *jsonOut {
		snap := reg.Snapshot()
		if err := emitJSON("chaos", false, verdict, &snap, nil); err != nil {
			return err
		}
	} else {
		fmt.Print(verdict.Render())
	}
	if *strict && !verdict.Pass {
		return fmt.Errorf("chaos: verdict FAIL (-strict)")
	}
	return nil
}

// experimentName derives the verdict label from the configuration.
func experimentName(eccName, recoverMode, attach string) string {
	if attach != "" {
		return "kvserve-attached"
	}
	name := "kvserve-" + eccName
	if recoverMode != "" {
		name += "+" + recoverMode
	}
	return name
}
