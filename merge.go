package hrmsim

import (
	"encoding/json"
	"fmt"

	"hrmsim/internal/core"
	"hrmsim/internal/obsv"
)

// MergeConfig configures a cross-shard merge (the CLI's `hrmsim merge`).
type MergeConfig struct {
	// Dir is the shard directory: every *.manifest.json in it (and the
	// journal each names) is merged. Required.
	Dir string
	// Metrics, if non-nil, receives merge instrumentation
	// (merge_shards_total, merge_records_total,
	// merge_duplicate_trials_total, merge_missing_trials_total; see
	// OBSERVABILITY.md). Internal for the same reason as
	// CharacterizeConfig.Metrics.
	Metrics *obsv.Registry
}

// MergeShardInfo summarizes one input shard of a merge.
type MergeShardInfo struct {
	// Index / Count are the shard coordinates from its manifest.
	Index, Count int
	// TrialLo / TrialHi bound the shard's owned half-open trial range.
	TrialLo, TrialHi int
	// Journal is the shard's journal path.
	Journal string
	// Completed / Aborted / Interrupted echo the shard manifest's own
	// accounting (what the shard recorded, before cross-shard dedup).
	Completed   int
	Aborted     int
	Interrupted bool
}

// MergeInfo reports what a merge consumed and reconciled.
type MergeInfo struct {
	// ConfigHash is the campaign config hash every shard agreed on.
	ConfigHash string
	// Shards describes each merged shard in merge (ascending index) order.
	Shards []MergeShardInfo
	// Records is the number of distinct trials in the merged result;
	// Duplicates counts records dropped by keep-first dedup; Missing
	// counts campaign trial indices no shard recorded.
	Records    int
	Duplicates int
	Missing    int
	// Metrics is the deterministic aggregate of every input shard's
	// manifest metrics snapshot (obsv.MergeSnapshots: counters summed,
	// fixed-bucket histograms merged, gauges by max — the same rule the
	// live fleet view applies, so a post-hoc merge and /statusz report
	// the same numbers). Nil when no shard recorded metrics.
	Metrics *obsv.Snapshot
}

// MergeShards merges a directory of shard journals (written by sharded
// `hrmsim characterize -shard i/N -manifest` runs) into one
// Characterization, bit-identical to the single-process campaign except
// for the run-shape bookkeeping: Parallelism is 0 (a merge has no worker
// pool) and Resumed is 0 (per-shard resume counts are a property of the
// shard runs, not the merged science). Shards must agree on the campaign
// config hash; missing trials yield a partial result with Interrupted
// set, not an error. The full contract is documented in SHARDING.md.
func MergeShards(cfg MergeConfig) (*Characterization, *MergeInfo, error) {
	if cfg.Dir == "" {
		return nil, nil, fmt.Errorf("hrmsim: MergeConfig.Dir is required")
	}
	shards, err := core.LoadShardDir(cfg.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("hrmsim: %w", err)
	}
	meta, trials, stats, err := core.MergeShards(shards)
	if err != nil {
		return nil, nil, fmt.Errorf("hrmsim: %w", err)
	}
	spec, err := specFor(ErrorType(meta.Error))
	if err != nil {
		return nil, nil, err
	}
	res := core.ResultFromTrials(meta.App, spec, meta.Trials, trials)

	info := &MergeInfo{
		ConfigHash: shards[0].Manifest.ConfigHash,
		Records:    stats.Records,
		Duplicates: stats.Duplicates,
		Missing:    stats.Missing,
	}
	var shardSnaps []obsv.Snapshot
	for _, s := range shards {
		info.Shards = append(info.Shards, MergeShardInfo{
			Index:       s.Manifest.ShardIndex,
			Count:       s.Manifest.ShardCount,
			TrialLo:     s.Manifest.TrialLo,
			TrialHi:     s.Manifest.TrialHi,
			Journal:     s.JournalPath,
			Completed:   s.Manifest.Completed,
			Aborted:     s.Manifest.Aborted,
			Interrupted: s.Manifest.Interrupted,
		})
		if len(s.Manifest.Metrics) > 0 {
			var snap obsv.Snapshot
			if err := json.Unmarshal(s.Manifest.Metrics, &snap); err != nil {
				return nil, nil, fmt.Errorf("hrmsim: shard %d/%d manifest metrics snapshot: %w",
					s.Manifest.ShardIndex, s.Manifest.ShardCount, err)
			}
			shardSnaps = append(shardSnaps, snap)
		}
	}
	if len(shardSnaps) > 0 {
		merged := obsv.MergeSnapshots(shardSnaps...)
		info.Metrics = &merged
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Counter("merge_shards_total").Add(int64(stats.Shards))
		cfg.Metrics.Counter("merge_records_total").Add(int64(stats.Records))
		cfg.Metrics.Counter("merge_duplicate_trials_total").Add(int64(stats.Duplicates))
		cfg.Metrics.Counter("merge_missing_trials_total").Add(int64(stats.Missing))
	}

	out, err := newCharacterization(
		App(meta.App), ErrorType(meta.Error), Region(meta.Region),
		meta.Trials, 0, res)
	if err != nil {
		return nil, nil, err
	}
	return out, info, nil
}
