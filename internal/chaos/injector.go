package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"hrmsim/internal/faults"
	"hrmsim/internal/inject"
	"hrmsim/internal/kvnode"
	"hrmsim/internal/simmem"
)

// ErrScheduleExhausted is returned by an Injector whose deterministic
// fault schedule has no more distinct targets; the experiment stops
// injecting early rather than piling faults onto already-hit words.
var ErrScheduleExhausted = fmt.Errorf("chaos: injection schedule exhausted")

// Injector applies the k-th fault of a schedule to the system under test.
// Implementations must serialize against the serving path themselves
// (exclusion gate locally, the protocol's own serialization remotely).
type Injector interface {
	// Inject applies fault number k (0-based). The returned key is the
	// working-set key whose value was targeted, or -1 when the target is
	// not key-addressable (random placement).
	Inject(k int) (key int64, err error)
}

// LocalInjector corrupts an in-process kvnode's address space directly,
// taking the exclusion gate for each flip so injection lands between
// protocol commands, never mid-access.
//
// Mode "hot" walks a deterministic round-robin over (hot key × value
// word): fault k hits word (k / len(keys)) of key keys[k % len(keys)],
// so no 8-byte ECC codeword is ever hit twice — single-bit protection is
// never accidentally escalated into an uncorrectable double-bit error by
// the schedule itself. Mode "random" samples uniform addresses like the
// campaign engine does.
type LocalInjector struct {
	srv  *kvnode.Server
	mode string
	keys []uint64
	rng  *rand.Rand
}

// NewLocalInjector builds an injector for a self-hosted node. For mode
// "hot", hotKeys defaults to the 8 most popular Zipf keys (0..7).
func NewLocalInjector(srv *kvnode.Server, mode string, hotKeys []uint64, seed int64) (*LocalInjector, error) {
	switch mode {
	case "hot":
		if len(hotKeys) == 0 {
			hotKeys = []uint64{0, 1, 2, 3, 4, 5, 6, 7}
		}
	case "random":
	default:
		return nil, fmt.Errorf("chaos: unknown injection mode %q (hot|random)", mode)
	}
	return &LocalInjector{
		srv:  srv,
		mode: mode,
		keys: hotKeys,
		rng:  rand.New(rand.NewSource(seed)),
	}, nil
}

// Inject applies fault k under the exclusion gate.
func (li *LocalInjector) Inject(k int) (int64, error) {
	if li.mode == "random" {
		err := li.srv.Space().Exclusive(func() error {
			_, err := inject.Random(li.srv.Space(), li.rng, faults.SingleBitSoft, nil)
			return err
		})
		return -1, err
	}
	wordsPerValue := li.srv.App().ValueSize() / 8
	if wordsPerValue < 1 {
		wordsPerValue = 1
	}
	if k >= len(li.keys)*wordsPerValue {
		return -1, ErrScheduleExhausted
	}
	key := li.keys[k%len(li.keys)]
	word := k / len(li.keys)
	err := li.srv.Space().Exclusive(func() error {
		addr, err := li.srv.App().ValueAddr(key)
		if err != nil {
			return err
		}
		// First byte of the word, a mid-byte bit: one flipped data bit
		// per distinct codeword.
		return li.srv.Space().FlipBit(addr+simmem.Addr(word*8), 3)
	})
	return int64(key), err
}

// RemoteInjector drives an external kvserve process through its own
// `inject soft` protocol command (random placement, serialized by the
// server's gate). Used by `hrmsim chaos -attach`.
type RemoteInjector struct {
	c *client
}

// NewRemoteInjector dials a dedicated injection connection.
func NewRemoteInjector(addr string) (*RemoteInjector, error) {
	c, err := dialClient(addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &RemoteInjector{c: c}, nil
}

// Inject asks the server to place one soft error.
func (ri *RemoteInjector) Inject(int) (int64, error) {
	resp, err := ri.c.roundTrip("inject soft")
	if err != nil {
		return -1, err
	}
	if !strings.HasPrefix(resp, "INJECTED") {
		return -1, fmt.Errorf("chaos: inject rejected: %q", resp)
	}
	return -1, nil
}

// Close releases the injection connection.
func (ri *RemoteInjector) Close() { ri.c.close() }
