// Package kvstore implements a Memcached-style in-memory key–value store
// on simulated memory — the second workload of the paper's case study.
//
// All store state lives in the heap region: a bucket array of entry
// addresses and chained entries carved from an arena allocator, each entry
// holding {key, version, value length, next pointer, value bytes}. The
// client workload is the paper's 90% GET / 10% SET mix over Zipfian keys,
// and the store is pre-populated (a warm cache over a fixed dataset, like
// the paper's 30 GB Twitter snapshot). Per-request locals — the key, the
// chain cursor — live in small stack frames.
//
// Corruption consequences mirror a native implementation: a flipped bit in
// a next pointer walks into the guard gap and faults (crash); a flipped
// key bit makes a lookup miss or hit the wrong entry (incorrect response);
// a flipped value bit is served to the client (incorrect); corrupted
// chain structure that forms a cycle trips the operation budget (hang →
// declared crash).
package kvstore

import (
	"fmt"
	"math/rand"
	"time"

	"hrmsim/internal/apps"
	"hrmsim/internal/simmem"
	"hrmsim/internal/trace"
)

// Config parameterizes a kvstore build.
type Config struct {
	// Seed drives workload generation.
	Seed int64
	// Keys is the number of distinct keys (the store is pre-populated
	// with all of them).
	Keys int
	// Ops is the client workload length.
	Ops int
	// ReadFraction is the GET share (the paper uses 0.9).
	ReadFraction float64
	// ValueSize is the value payload size in bytes.
	ValueSize int
	// Buckets is the hash-table bucket count (defaults to Keys).
	Buckets int
	// RequestCost advances the virtual clock per operation.
	RequestCost time.Duration
	// OpBudget caps simulated memory operations per request.
	OpBudget int
	// StackSize and PageSize optionally override region sizing.
	StackSize int
	PageSize  int
	// CacheLines, when nonzero, enables the write-back CPU cache model
	// in front of memory (the paper notes caches delay error visibility;
	// the default off matches its conservative methodology).
	CacheLines int
	// HeapBacked gives the heap a persistent-storage shadow copy
	// (synchronized to the pre-populated store at build time), enabling
	// Par+R-style software recovery of store data. The live server uses
	// it; the paper's Table 2 classifies cache data as explicitly
	// recoverable from the backing database.
	HeapBacked bool
	// HeapCodec / StackCodec optionally protect regions.
	HeapCodec, StackCodec simmem.Codec
	// HeapMC / StackMC install software responses.
	HeapMC, StackMC simmem.MCHandler
}

// DefaultConfig returns a laptop-scale configuration: ~2K keys with
// 64-byte values (the paper's 35 GB heap / 132 KB stack shape — heap
// dominant, stack tiny).
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:         seed,
		Keys:         2048,
		Ops:          2000,
		ReadFraction: 0.9,
		ValueSize:    64,
		RequestCost:  5 * time.Millisecond,
		OpBudget:     50000,
	}
}

const entryHeaderBytes = 24 // key u64, version u32, vlen u32, next u64

// Builder pre-generates the op trace; Build materializes fresh stores.
type Builder struct {
	cfg Config
	ops []trace.KVOp
}

var _ apps.Builder = (*Builder)(nil)

// NewBuilder generates the workload for the configuration.
func NewBuilder(cfg Config) (*Builder, error) {
	if cfg.Buckets == 0 {
		cfg.Buckets = cfg.Keys
	}
	if cfg.ValueSize <= 0 {
		return nil, fmt.Errorf("kvstore: value size must be positive, got %d", cfg.ValueSize)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ops, err := trace.GenKVOps(rng, cfg.Keys, cfg.Ops, cfg.ReadFraction)
	if err != nil {
		return nil, fmt.Errorf("kvstore: generating ops: %w", err)
	}
	return &Builder{cfg: cfg, ops: ops}, nil
}

// AppName implements apps.Builder.
func (b *Builder) AppName() string { return "kvstore" }

// Config returns the builder's configuration.
func (b *Builder) Config() Config { return b.cfg }

// App is one kvstore instance.
type App struct {
	cfg     Config
	as      *simmem.AddressSpace
	heap    *simmem.Region
	arena   *simmem.Arena
	stack   *simmem.Stack
	ops     []trace.KVOp
	buckets simmem.Addr // bucket array base

	// Two access streams, one accessor each: chain walks alternate
	// between the stack-frame cursor and heap entries on every hop, so
	// a single one-entry region cache would thrash on the alternation
	// (see simmem.Accessor).
	frameAcc *simmem.Accessor
	dataAcc  *simmem.Accessor

	// Snapshot state (apps.SnapshotApp): memory capture plus the
	// host-side mutable state — allocator bookkeeping (SET-miss inserts
	// allocate) and stack depth.
	snapMem   *simmem.Snapshot
	snapArena *simmem.ArenaMark
	snapSP    int
}

var _ apps.App = (*App)(nil)
var _ apps.SnapshotApp = (*App)(nil)

// Build implements apps.Builder.
func (b *Builder) Build() (apps.App, error) {
	cfg := b.cfg
	entrySize := entryHeaderBytes + cfg.ValueSize
	// Region size: bucket array + all entries + slack for SET-allocated
	// duplicates (none today, entries are updated in place) + rounding.
	heapSize := cfg.Buckets*8 + cfg.Keys*(entrySize+16) + 16384

	as, err := simmem.New(simmem.Config{PageSize: cfg.PageSize})
	if err != nil {
		return nil, fmt.Errorf("kvstore: creating address space: %w", err)
	}
	if cfg.CacheLines > 0 {
		if err := as.EnableCache(cfg.CacheLines); err != nil {
			return nil, err
		}
	}
	heap, err := as.AddRegion(simmem.RegionSpec{
		Name: "heap", Kind: simmem.RegionHeap, Size: heapSize,
		Backed: cfg.HeapBacked, Codec: cfg.HeapCodec, MC: cfg.HeapMC,
	})
	if err != nil {
		return nil, fmt.Errorf("kvstore: mapping heap: %w", err)
	}
	stackSize := cfg.StackSize
	if stackSize == 0 {
		stackSize = 16 << 10
	}
	stackRegion, err := as.AddRegion(simmem.RegionSpec{
		Name: "stack", Kind: simmem.RegionStack, Size: stackSize,
		Codec: cfg.StackCodec, MC: cfg.StackMC,
	})
	if err != nil {
		return nil, fmt.Errorf("kvstore: mapping stack: %w", err)
	}

	// Mark the request handler's frame bytes as live stack (see the
	// equivalent note in websearch).
	stackRegion.SetUsed(frameBytes)

	app := &App{
		cfg:   cfg,
		as:    as,
		heap:  heap,
		arena: simmem.NewArena(heap),
		stack: simmem.NewStack(stackRegion),
		ops:   b.ops,
	}
	app.frameAcc = as.NewAccessor()
	app.dataAcc = as.NewAccessor()
	// Bucket array first, zeroed (0 = empty chain).
	buckets, err := app.arena.Alloc(cfg.Buckets * 8)
	if err != nil {
		return nil, fmt.Errorf("kvstore: allocating buckets: %w", err)
	}
	app.buckets = buckets
	zero := make([]byte, cfg.Buckets*8)
	if err := as.WriteRaw(buckets, zero); err != nil {
		return nil, fmt.Errorf("kvstore: zeroing buckets: %w", err)
	}
	// Pre-populate every key at version 0.
	for k := 0; k < cfg.Keys; k++ {
		if err := app.insert(uint64(k), 0); err != nil {
			return nil, fmt.Errorf("kvstore: pre-populating key %d: %w", k, err)
		}
	}
	// A backed heap checkpoints the populated store, so recovery
	// handlers restore the warm-cache contents, not zeroes.
	if cfg.HeapBacked {
		if err := heap.FlushAll(); err != nil {
			return nil, fmt.Errorf("kvstore: checkpointing heap: %w", err)
		}
	}
	return app, nil
}

// hashKey is the bucket hash (host arithmetic on a value the request
// carries, like a register computation).
func hashKey(key uint64, buckets int) int {
	h := key * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return int(h % uint64(buckets))
}

// insert links a fresh entry at its bucket head (build-time population and
// SET-miss path share it).
func (a *App) insert(key uint64, version uint32) error {
	entrySize := entryHeaderBytes + a.cfg.ValueSize
	addr, err := a.arena.Alloc(entrySize)
	if err != nil {
		return err
	}
	slot := a.buckets + simmem.Addr(hashKey(key, a.cfg.Buckets)*8)
	head, err := a.dataAcc.LoadU64(slot)
	if err != nil {
		return err
	}
	buf := make([]byte, entrySize)
	putU64(buf[0:], key)
	putU32(buf[8:], version)
	putU32(buf[12:], uint32(a.cfg.ValueSize))
	putU64(buf[16:], head)
	copy(buf[entryHeaderBytes:], trace.ValueFor(key, version, a.cfg.ValueSize))
	if err := a.dataAcc.Store(addr, buf); err != nil {
		return err
	}
	return a.dataAcc.StoreU64(slot, uint64(addr))
}

// BuildSnapshot implements apps.SnapshotBuilder.
func (b *Builder) BuildSnapshot() (apps.SnapshotApp, error) {
	app, err := b.Build()
	if err != nil {
		return nil, err
	}
	return app.(*App), nil
}

var _ apps.SnapshotBuilder = (*Builder)(nil)

// Snapshot implements apps.SnapshotApp. Region used marks are restored
// by the memory snapshot; the arena mark covers the allocator's
// host-side free lists and size map.
func (a *App) Snapshot() error {
	a.snapMem = a.as.Snapshot()
	a.snapArena = a.arena.Mark()
	a.snapSP = a.stack.Depth()
	return nil
}

// Reset implements apps.SnapshotApp.
func (a *App) Reset() (int, error) {
	if a.snapMem == nil {
		return 0, fmt.Errorf("kvstore: Reset before Snapshot")
	}
	n, err := a.snapMem.Restore()
	if err != nil {
		return 0, fmt.Errorf("kvstore: %w", err)
	}
	a.arena.Rewind(a.snapArena)
	if err := a.stack.Rewind(a.snapSP); err != nil {
		return 0, err
	}
	return n, nil
}

// Name implements apps.App.
func (a *App) Name() string { return "kvstore" }

// Space implements apps.App.
func (a *App) Space() *simmem.AddressSpace { return a.as }

// NumRequests implements apps.App.
func (a *App) NumRequests() int { return len(a.ops) }

// Stack-frame layout.
const (
	frKey      = 0 // u64 request key
	frCursor   = 8 // u64 current entry address
	frameBytes = 32
)

// Serve implements apps.App.
func (a *App) Serve(i int) (resp apps.Response, err error) {
	if i < 0 || i >= len(a.ops) {
		return apps.Response{}, fmt.Errorf("kvstore: request %d out of range", i)
	}
	a.as.Clock().Advance(a.cfg.RequestCost)
	op := a.ops[i]
	budget := apps.NewBudget(a.cfg.OpBudget)

	frame, err := a.stack.Push(frameBytes)
	if err != nil {
		return apps.Response{}, fmt.Errorf("kvstore: pushing frame: %w", err)
	}
	defer func() {
		if perr := a.stack.Pop(frame); perr != nil && err == nil {
			err = perr
		}
	}()
	return a.serveOp(frame, op, budget)
}

func (a *App) serveOp(frame simmem.Frame, op trace.KVOp, budget *apps.Budget) (apps.Response, error) {
	fb := frame.Base
	if err := a.frameAcc.StoreU64(fb+frKey, op.Key); err != nil {
		return apps.Response{}, err
	}
	// Find the entry by walking the chain, round-tripping the cursor
	// through the stack frame.
	key, err := a.frameAcc.LoadU64(fb + frKey)
	if err != nil {
		return apps.Response{}, err
	}
	slot := a.buckets + simmem.Addr(hashKey(key, a.cfg.Buckets)*8)
	head, err := a.dataAcc.LoadU64(slot)
	if err != nil {
		return apps.Response{}, err
	}
	if err := a.frameAcc.StoreU64(fb+frCursor, head); err != nil {
		return apps.Response{}, err
	}
	var entry simmem.Addr
	for {
		if err := budget.Spend(1); err != nil {
			return apps.Response{}, err
		}
		cur, err := a.frameAcc.LoadU64(fb + frCursor)
		if err != nil {
			return apps.Response{}, err
		}
		if cur == 0 {
			break // miss
		}
		ekey, err := a.dataAcc.LoadU64(simmem.Addr(cur))
		if err != nil {
			return apps.Response{}, err
		}
		if ekey == key {
			entry = simmem.Addr(cur)
			break
		}
		next, err := a.dataAcc.LoadU64(simmem.Addr(cur) + 16)
		if err != nil {
			return apps.Response{}, err
		}
		if err := a.frameAcc.StoreU64(fb+frCursor, next); err != nil {
			return apps.Response{}, err
		}
	}

	d := apps.NewDigest()
	if op.Read {
		d.AddU64(key)
		if entry == 0 {
			// Cache miss: the pre-populated store should always hit,
			// but serve the miss as the protocol would.
			d.AddU64(0xdeadbeef)
			return d.Response(), nil
		}
		version, err := a.dataAcc.LoadU32(entry + 8)
		if err != nil {
			return apps.Response{}, err
		}
		vlen, err := a.dataAcc.LoadU32(entry + 12)
		if err != nil {
			return apps.Response{}, err
		}
		if err := budget.Spend(int(vlen)); err != nil {
			// A corrupted length field makes the response path try to
			// stream an absurd amount of data; the client gives up.
			return apps.Response{}, err
		}
		val := make([]byte, vlen)
		if err := a.dataAcc.Load(entry+entryHeaderBytes, val); err != nil {
			return apps.Response{}, err
		}
		d.AddU32(version)
		d.AddBytes(val)
		return d.Response(), nil
	}

	// SET: update in place, or insert on miss.
	if entry == 0 {
		if err := a.insert(key, op.Version); err != nil {
			return apps.Response{}, err
		}
	} else {
		if err := a.dataAcc.StoreU32(entry+8, op.Version); err != nil {
			return apps.Response{}, err
		}
		if err := a.dataAcc.Store(entry+entryHeaderBytes, trace.ValueFor(key, op.Version, a.cfg.ValueSize)); err != nil {
			return apps.Response{}, err
		}
	}
	d.AddU64(key)
	d.AddU32(op.Version)
	d.AddU64(0x5e7) // "STORED"
	return d.Response(), nil
}

// Ops exposes the workload trace (used by the TCP server example).
func (a *App) Ops() []trace.KVOp { return a.ops }

// Get performs a raw lookup outside the recorded workload, returning the
// stored version and value. The TCP demo server uses it.
func (a *App) Get(key uint64) (uint32, []byte, error) {
	budget := apps.NewBudget(a.cfg.OpBudget)
	frame, err := a.stack.Push(frameBytes)
	if err != nil {
		return 0, nil, err
	}
	defer func() { _ = a.stack.Pop(frame) }()
	if err := a.frameAcc.StoreU64(frame.Base+frCursor, 0); err != nil {
		return 0, nil, err
	}
	slot := a.buckets + simmem.Addr(hashKey(key, a.cfg.Buckets)*8)
	cur, err := a.dataAcc.LoadU64(slot)
	if err != nil {
		return 0, nil, err
	}
	for cur != 0 {
		if err := budget.Spend(1); err != nil {
			return 0, nil, err
		}
		ekey, err := a.dataAcc.LoadU64(simmem.Addr(cur))
		if err != nil {
			return 0, nil, err
		}
		if ekey == key {
			version, err := a.dataAcc.LoadU32(simmem.Addr(cur) + 8)
			if err != nil {
				return 0, nil, err
			}
			vlen, err := a.dataAcc.LoadU32(simmem.Addr(cur) + 12)
			if err != nil {
				return 0, nil, err
			}
			if err := budget.Spend(int(vlen)); err != nil {
				return 0, nil, err
			}
			val := make([]byte, vlen)
			if err := a.dataAcc.Load(simmem.Addr(cur)+entryHeaderBytes, val); err != nil {
				return 0, nil, err
			}
			return version, val, nil
		}
		cur, err = a.dataAcc.LoadU64(simmem.Addr(cur) + 16)
		if err != nil {
			return 0, nil, err
		}
	}
	return 0, nil, fmt.Errorf("kvstore: key %d not found", key)
}

// Set stores a value for key at the given version outside the recorded
// workload (updating in place, inserting on miss). The TCP demo server
// uses it.
func (a *App) Set(key uint64, version uint32) error {
	budget := apps.NewBudget(a.cfg.OpBudget)
	slot := a.buckets + simmem.Addr(hashKey(key, a.cfg.Buckets)*8)
	cur, err := a.dataAcc.LoadU64(slot)
	if err != nil {
		return err
	}
	for cur != 0 {
		if err := budget.Spend(1); err != nil {
			return err
		}
		ekey, err := a.dataAcc.LoadU64(simmem.Addr(cur))
		if err != nil {
			return err
		}
		if ekey == key {
			if err := a.dataAcc.StoreU32(simmem.Addr(cur)+8, version); err != nil {
				return err
			}
			return a.dataAcc.Store(simmem.Addr(cur)+entryHeaderBytes,
				trace.ValueFor(key, version, a.cfg.ValueSize))
		}
		cur, err = a.dataAcc.LoadU64(simmem.Addr(cur) + 16)
		if err != nil {
			return err
		}
	}
	return a.insert(key, version)
}

// ValueAddr resolves the address of key's value bytes by walking its
// bucket chain through raw (unsensed, undecoded) memory — no fault can
// fire and no ECC event is emitted, so a fault injector can target a
// specific key's value without perturbing the experiment. Returns an
// error if the chain is broken (a corrupted pointer walked out of the
// heap) or the key is absent.
func (a *App) ValueAddr(key uint64) (simmem.Addr, error) {
	slot := a.buckets + simmem.Addr(hashKey(key, a.cfg.Buckets)*8)
	var buf [8]byte
	if err := a.as.ReadRaw(slot, buf[:]); err != nil {
		return 0, err
	}
	cur := simmem.Addr(getU64(buf[:]))
	for hops := 0; cur != 0; hops++ {
		if hops > a.cfg.Keys || !a.heap.Contains(cur) {
			return 0, fmt.Errorf("kvstore: chain for key %d is corrupt", key)
		}
		if err := a.as.ReadRaw(cur, buf[:]); err != nil {
			return 0, err
		}
		if getU64(buf[:]) == key {
			return cur + entryHeaderBytes, nil
		}
		if err := a.as.ReadRaw(cur+16, buf[:]); err != nil {
			return 0, err
		}
		cur = simmem.Addr(getU64(buf[:]))
	}
	return 0, fmt.Errorf("kvstore: key %d not found", key)
}

// ValueSize returns the configured value payload size.
func (a *App) ValueSize() int { return a.cfg.ValueSize }

func getU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}
