// Package simmem implements the simulated memory subsystem that the whole
// framework is built on: a byte-addressable address space divided into
// application memory regions (private, heap, stack — Table 2 of the paper),
// with pluggable per-region protection codecs (ECC), stuck-at fault state
// for hard errors, access observation hooks for the monitoring framework,
// optional persistent backing storage for recoverability experiments, and a
// virtual clock.
//
// It substitutes for the paper's WinDbg-based manipulation of live process
// memory: applications in internal/apps store all of their data structures
// in an AddressSpace and access them through Load/Store, so injected bit
// flips corrupt the actual bytes those applications parse and traverse.
// Crashes, incorrect results, and masking then emerge from real execution
// rather than from a closed-form model.
package simmem

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// Addr is a simulated virtual address.
type Addr uint64

// RegionKind classifies application memory regions per Table 2.
type RegionKind int

// Region kinds.
const (
	// RegionPrivate is pre-allocated user-managed memory (VirtualAlloc /
	// mmap), e.g. WebSearch's read-only index cache.
	RegionPrivate RegionKind = iota + 1
	// RegionHeap holds dynamically allocated data.
	RegionHeap
	// RegionStack holds function parameters and local variables.
	RegionStack
	// RegionOther is program code, managed heap, and so on.
	RegionOther
)

// String returns the region kind name as used in the paper's tables.
func (k RegionKind) String() string {
	switch k {
	case RegionPrivate:
		return "private"
	case RegionHeap:
		return "heap"
	case RegionStack:
		return "stack"
	case RegionOther:
		return "other"
	default:
		return fmt.Sprintf("region(%d)", int(k))
	}
}

// Config configures an AddressSpace.
type Config struct {
	// PageSize is the memory page granularity in bytes (used for page
	// retirement and checkpoint flushing). Defaults to 4096. Must be a
	// power of two and a multiple of every region codec's word size.
	PageSize int
	// Clock is the virtual time source. A new zero clock is created if
	// nil.
	Clock *Clock
	// ScrubOnCorrect writes corrected data back to memory on every
	// corrected load (demand scrubbing). Off by default: like most
	// memory controllers, corrections are made on the fly and the
	// erroneous cells keep their contents until overwritten.
	ScrubOnCorrect bool
	// DisableFastPath turns off the clean-page fast path, forcing every
	// access through per-byte sensing and per-word decoding. The fast
	// path is bit-identical to the slow path (see the taint invariant in
	// DESIGN.md); this knob exists so equivalence tests and benchmarks
	// can drive the reference slow path over identical workloads.
	DisableFastPath bool
}

// Counters aggregates access and protection statistics for an address
// space.
type Counters struct {
	Loads         uint64
	Stores        uint64
	Corrected     uint64 // corrected-error decode events
	Uncorrectable uint64 // uncorrectable decode events (before software response)
	Recovered     uint64 // uncorrectable events repaired by an MCHandler
}

// AddressSpace is one application's simulated memory. It is not safe for
// concurrent use; characterization campaigns create one address space per
// trial goroutine.
type AddressSpace struct {
	pageSize       int
	clock          *Clock
	scrubOnCorrect bool
	regions        []*Region
	accessObs      []AccessObserver
	eccObs         []ECCObserver
	counters       Counters
	cache          *cache    // nil unless EnableCache was called
	snap           *Snapshot // active capture (snapshot.go), nil until Snapshot
	// fastPath gates the clean-page fast path (on unless
	// Config.DisableFastPath); fastLoads counts load operations (Load
	// calls and cache-line fills) it served without decoding a word or
	// sensing a byte. The counter is monotonic across snapshot restores:
	// it is observability, not simulated state.
	fastPath  bool
	fastLoads uint64
	// lastRegion is a one-entry cache in front of findRegion; the three
	// applications generate long runs of same-region accesses. Regions
	// are append-only, so a cached pointer never goes stale.
	lastRegion *Region
	// Reusable scratch for the word/check (and raw-write widening)
	// buffers of the decode/encode paths. scratchBusy guards against
	// reentrancy: an MC handler or observer that re-enters the memory
	// path while a frame up the stack holds the scratch falls back to
	// allocating (reentrant paths only run when real errors are being
	// handled, never on the clean hot path).
	scratchWord  []byte
	scratchCheck []byte
	scratchBusy  bool
	// gate serializes whole logical operations when the space is shared
	// by a live server's connection goroutines and a fault injector; see
	// gate.go. Single-goroutine users (the campaign engine) never touch
	// it.
	gate sync.Mutex
}

// New creates an empty address space.
func New(cfg Config) (*AddressSpace, error) {
	if cfg.PageSize == 0 {
		cfg.PageSize = 4096
	}
	if cfg.PageSize < 16 || cfg.PageSize&(cfg.PageSize-1) != 0 {
		return nil, fmt.Errorf("simmem: page size %d is not a power of two >= 16", cfg.PageSize)
	}
	if cfg.Clock == nil {
		cfg.Clock = &Clock{}
	}
	return &AddressSpace{
		pageSize:       cfg.PageSize,
		clock:          cfg.Clock,
		scrubOnCorrect: cfg.ScrubOnCorrect,
		fastPath:       !cfg.DisableFastPath,
	}, nil
}

// SetFastPath enables or disables the clean-page fast path and returns
// the previous setting. Both settings produce bit-identical data,
// counters, events, and faults; differential tests and benchmarks use
// this to compare the two paths on a space built by code that does not
// expose Config.DisableFastPath.
func (as *AddressSpace) SetFastPath(on bool) bool {
	prev := as.fastPath
	as.fastPath = on
	return prev
}

// FastPathLoads returns the number of load operations (Load calls and
// cache-line fills) served entirely from untainted pages — a bulk copy
// with no per-byte sensing and no codeword decoding. The counter is
// monotonic: snapshot restores do not roll it back.
func (as *AddressSpace) FastPathLoads() uint64 { return as.fastLoads }

// TaintedPages returns the number of pages currently marked tainted
// (pages whose sensed contents are not known to decode clean, forcing
// accesses through the full decode path).
func (as *AddressSpace) TaintedPages() int {
	n := 0
	for _, r := range as.regions {
		for _, p := range r.pages {
			if p.tainted {
				n++
			}
		}
	}
	return n
}

// Clock returns the address space's virtual clock.
func (as *AddressSpace) Clock() *Clock { return as.clock }

// PageSize returns the page granularity in bytes.
func (as *AddressSpace) PageSize() int { return as.pageSize }

// Counters returns a snapshot of the access and ECC counters.
func (as *AddressSpace) Counters() Counters { return as.counters }

// AddAccessObserver registers an observer for application accesses.
func (as *AddressSpace) AddAccessObserver(o AccessObserver) {
	as.accessObs = append(as.accessObs, o)
}

// AddECCObserver registers an observer for detection/correction events.
func (as *AddressSpace) AddECCObserver(o ECCObserver) {
	as.eccObs = append(as.eccObs, o)
}

// Regions returns the mapped regions in layout order. The returned slice
// must not be modified.
func (as *AddressSpace) Regions() []*Region { return as.regions }

// RegionByKind returns the first region of the given kind, or nil.
func (as *AddressSpace) RegionByKind(k RegionKind) *Region {
	for _, r := range as.regions {
		if r.kind == k {
			return r
		}
	}
	return nil
}

// RegionByName returns the named region, or nil.
func (as *AddressSpace) RegionByName(name string) *Region {
	for _, r := range as.regions {
		if r.name == name {
			return r
		}
	}
	return nil
}

// RegionSpec describes a region to map.
type RegionSpec struct {
	// Name identifies the region (unique within the address space).
	Name string
	// Kind is the Table 2 classification.
	Kind RegionKind
	// Size is the mapped size in bytes; it is rounded up to a whole
	// number of pages.
	Size int
	// ReadOnly rejects application stores (setup and recovery writes go
	// through WriteRaw). WebSearch's index cache is read-only.
	ReadOnly bool
	// Backed maintains a persistent-storage shadow copy used by the
	// recoverability analysis and by Par+R software recovery.
	Backed bool
	// Codec is the hardware protection technique; nil means no
	// detection/correction (NoECC).
	Codec Codec
	// MC handles uncorrectable errors; nil means they crash the
	// application.
	MC MCHandler
}

// regionGap leaves unmapped guard space between regions so corrupted
// pointers usually fault rather than silently landing in a neighbour.
const regionGap = 1 << 20

// firstBase is the base address of the first mapped region; addresses below
// it are never mapped, so small corrupted offsets fault.
const firstBase Addr = 1 << 16

// AddRegion maps a new region after the existing ones.
func (as *AddressSpace) AddRegion(spec RegionSpec) (*Region, error) {
	if spec.Size <= 0 {
		return nil, fmt.Errorf("simmem: region %q size must be positive, got %d", spec.Name, spec.Size)
	}
	if as.RegionByName(spec.Name) != nil {
		return nil, fmt.Errorf("simmem: region %q already mapped", spec.Name)
	}
	if spec.Codec != nil {
		w := spec.Codec.WordBytes()
		if w <= 0 || as.pageSize%w != 0 {
			return nil, fmt.Errorf("simmem: codec %q word size %d does not divide page size %d",
				spec.Codec.Name(), w, as.pageSize)
		}
		if spec.Codec.CheckBytes() <= 0 {
			return nil, fmt.Errorf("simmem: codec %q has no check storage", spec.Codec.Name())
		}
		// Pre-size the shared scratch so the decode/encode paths never
		// allocate in steady state.
		if cap(as.scratchWord) < w {
			as.scratchWord = make([]byte, w)
		}
		if c := spec.Codec.CheckBytes(); cap(as.scratchCheck) < c {
			as.scratchCheck = make([]byte, c)
		}
	}
	// Round size up to whole pages.
	npages := (spec.Size + as.pageSize - 1) / as.pageSize
	size := npages * as.pageSize

	base := firstBase
	if n := len(as.regions); n > 0 {
		last := as.regions[n-1]
		base = last.base + Addr(last.size) + regionGap
	}
	r := &Region{
		as:       as,
		name:     spec.Name,
		kind:     spec.Kind,
		base:     base,
		size:     size,
		readOnly: spec.ReadOnly,
		codec:    spec.Codec,
		mc:       spec.MC,
		pages:    make([]*page, npages),
	}
	checkPerPage := 0
	if spec.Codec != nil {
		checkPerPage = as.pageSize / spec.Codec.WordBytes() * spec.Codec.CheckBytes()
	}
	for i := range r.pages {
		p := &page{data: make([]byte, as.pageSize)}
		if checkPerPage > 0 {
			p.check = make([]byte, checkPerPage)
		}
		r.pages[i] = p
	}
	if spec.Backed {
		r.backing = make([]byte, size)
	}
	as.regions = append(as.regions, r)
	return r, nil
}

// page is one physical page frame of a region.
type page struct {
	data  []byte
	check []byte // nil when the region is unprotected
	// stuckSet forces bits to 1 on sensing; stuckClr forces bits to 0.
	// Both are nil until the first hard error is installed.
	stuckSet  []byte
	stuckClr  []byte
	corrected uint64 // corrected-error events observed on this frame
	replaced  int    // times the frame was replaced (retirement)
	// tainted records that the page may hold a visible error. The
	// invariant (DESIGN.md "Clean-word fast path"): on an untainted page
	// there is no stuck-at state and every codeword decodes
	// VerdictClean, so sensing is a plain copy of data and decoding is a
	// no-op — which is exactly what the fast path does. Every corruption
	// channel sets it; only operations that re-establish the invariant
	// verifiably clear it.
	tainted bool
}

// senseByte returns the value the memory device would return for byte i of
// the page, applying stuck-at faults.
func (p *page) senseByte(i int) byte {
	b := p.data[i]
	if p.stuckClr != nil {
		b &^= p.stuckClr[i]
	}
	if p.stuckSet != nil {
		b |= p.stuckSet[i]
	}
	return b
}

// hasStuck reports whether the frame has any stuck-at fault state.
func (p *page) hasStuck() bool { return p.stuckSet != nil || p.stuckClr != nil }

// Region is a contiguous mapped range of the address space.
type Region struct {
	as       *AddressSpace
	name     string
	kind     RegionKind
	base     Addr
	size     int
	readOnly bool
	codec    Codec
	mc       MCHandler
	pages    []*page
	backing  []byte
	used     int
	// Dirty-page tracking for the snapshot layer (snapshot.go): nil
	// until a snapshot arms it, then a per-page dirtied flag plus the
	// list of dirtied page indices (what Restore walks).
	dirty     []bool
	dirtyList []int
}

// Name returns the region name.
func (r *Region) Name() string { return r.name }

// Kind returns the Table 2 classification.
func (r *Region) Kind() RegionKind { return r.kind }

// Base returns the first mapped address.
func (r *Region) Base() Addr { return r.base }

// Size returns the mapped size in bytes.
func (r *Region) Size() int { return r.size }

// ReadOnly reports whether application stores are rejected.
func (r *Region) ReadOnly() bool { return r.readOnly }

// Backed reports whether the region has a persistent-storage shadow.
func (r *Region) Backed() bool { return r.backing != nil }

// Codec returns the protection codec, or nil for NoECC.
func (r *Region) Codec() Codec { return r.codec }

// SetMCHandler installs (or clears) the uncorrectable-error software
// response for this region.
func (r *Region) SetMCHandler(h MCHandler) { r.mc = h }

// Used returns the high-water mark of bytes actually occupied by
// application data, as reported by the region's allocator. Error-injection
// address sampling draws only from used bytes, matching the paper's
// sampling of valid application addresses.
func (r *Region) Used() int { return r.used }

// SetUsed records the number of occupied bytes (clamped to the region
// size).
func (r *Region) SetUsed(n int) {
	if n < 0 {
		n = 0
	}
	if n > r.size {
		n = r.size
	}
	r.used = n
}

// Contains reports whether addr falls inside the region.
func (r *Region) Contains(addr Addr) bool {
	return addr >= r.base && addr < r.base+Addr(r.size)
}

// PageCount returns the number of page frames.
func (r *Region) PageCount() int { return len(r.pages) }

// PageIndex returns the page number containing addr, which must be inside
// the region.
func (r *Region) PageIndex(addr Addr) int {
	return int(addr-r.base) / r.as.pageSize
}

// PageAddr returns the first address of page i.
func (r *Region) PageAddr(i int) Addr {
	return r.base + Addr(i*r.as.pageSize)
}

// CorrectedOnPage returns the number of corrected-error events observed on
// page i since its frame was last replaced. Page-retirement policies use
// this as their threshold input.
func (r *Region) CorrectedOnPage(i int) uint64 { return r.pages[i].corrected }

// Replacements returns how many times page i's frame has been replaced.
func (r *Region) Replacements(i int) int { return r.pages[i].replaced }

// taintPage marks page pi as possibly holding a visible error, and
// dirties it so an armed snapshot rolls the flag back with the data.
func (r *Region) taintPage(pi int) {
	r.markDirty(pi)
	r.pages[pi].tainted = true
}

// clearTaint marks page pi verifiably clean again. Callers must have
// re-established the taint invariant (no stuck-at state, every word
// decodes clean) first. The flag change dirties the page so an armed
// snapshot restores the captured taint state exactly.
func (r *Region) clearTaint(pi int) {
	if !r.pages[pi].tainted {
		return
	}
	r.markDirty(pi)
	r.pages[pi].tainted = false
}

// cleanPages reports whether pages p0..p1 (inclusive) are all untainted.
func (r *Region) cleanPages(p0, p1 int) bool {
	for pi := p0; pi <= p1; pi++ {
		if r.pages[pi].tainted {
			return false
		}
	}
	return true
}

// copyStored copies len(buf) stored bytes starting at region offset off
// into buf — raw page data, no stuck-at sensing. On untainted pages this
// equals sensing (no stuck-at state exists); the raw-access paths use it
// regardless of taint because they read storage by definition.
func (r *Region) copyStored(buf []byte, off int) {
	ps := r.as.pageSize
	for n := 0; n < len(buf); {
		o := off + n
		n += copy(buf[n:], r.pages[o/ps].data[o%ps:])
	}
}

// verifyPageClean reports whether page pi provably satisfies the taint
// invariant: no stuck-at state, and (in protected regions) every
// codeword decodes VerdictClean. It decodes into scratch copies so a
// correctable pattern is not corrected as a side effect.
func (r *Region) verifyPageClean(pi int) bool {
	p := r.pages[pi]
	if p.hasStuck() {
		return false
	}
	if r.codec == nil {
		return true
	}
	as := r.as
	w := r.codec.WordBytes()
	c := r.codec.CheckBytes()
	word, check, owned := as.acquireScratch(w, c)
	defer as.releaseScratch(owned)
	for wo := 0; wo < as.pageSize; wo += w {
		copy(word, p.data[wo:wo+w])
		copy(check, p.check[wo/w*c:(wo/w+1)*c])
		if r.codec.Decode(word, check) != VerdictClean {
			return false
		}
	}
	return true
}

// acquireScratch hands out the address space's reusable word/check
// buffers, or fresh allocations when a frame up the stack already holds
// them (an MC handler or observer re-entered the memory path). Callers
// must pair it with releaseScratch(owned).
func (as *AddressSpace) acquireScratch(w, c int) (word, check []byte, owned bool) {
	if as.scratchBusy {
		return make([]byte, w), make([]byte, c), false
	}
	if cap(as.scratchWord) < w {
		as.scratchWord = make([]byte, w)
	}
	if cap(as.scratchCheck) < c {
		as.scratchCheck = make([]byte, c)
	}
	as.scratchBusy = true
	return as.scratchWord[:w], as.scratchCheck[:c], true
}

// releaseScratch returns the scratch buffers acquired with owned=true.
func (as *AddressSpace) releaseScratch(owned bool) {
	if owned {
		as.scratchBusy = false
	}
}

// findRegion locates the region containing addr: a one-entry cache for
// the sequential access runs the applications generate, then a binary
// search over the region bases (regions are mapped in ascending address
// order and never removed, so the slice is always sorted and a cached
// pointer never goes stale).
func (as *AddressSpace) findRegion(addr Addr) *Region {
	if r := as.lastRegion; r != nil && r.Contains(addr) {
		return r
	}
	regions := as.regions
	lo, hi := 0, len(regions)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r := regions[mid]; addr >= r.base+Addr(r.size) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(regions) && regions[lo].Contains(addr) {
		as.lastRegion = regions[lo]
		return regions[lo]
	}
	return nil
}

// locate resolves an access of n bytes at addr to a region, returning a
// fault if the range is unmapped or runs off the end of its region.
func (as *AddressSpace) locate(addr Addr, n int) (*Region, error) {
	if n < 0 {
		return nil, fmt.Errorf("simmem: negative access length %d", n)
	}
	r := as.findRegion(addr)
	if r == nil {
		return nil, &Fault{Kind: FaultUnmapped, Addr: addr}
	}
	if addr+Addr(n) > r.base+Addr(r.size) {
		return nil, &Fault{Kind: FaultOutOfRange, Addr: addr}
	}
	return r, nil
}

// Load reads len(buf) bytes at addr through the full memory path: stuck-at
// faults are sensed, protected regions decode every covered codeword
// (possibly correcting, possibly raising a machine check), and access
// observers are notified.
func (as *AddressSpace) Load(addr Addr, buf []byte) error {
	r, err := as.locate(addr, len(buf))
	if err != nil {
		return err
	}
	if as.cache != nil {
		if err := as.cachedLoad(addr, buf); err != nil {
			return err
		}
	} else if r.codec == nil {
		if r.senseInto(buf, int(addr-r.base)) {
			as.fastLoads++
		}
	} else if fast, err := as.loadDecoded(r, int(addr-r.base), buf); err != nil {
		return err
	} else if fast {
		as.fastLoads++
	}
	as.counters.Loads++
	as.notifyAccess(AccessEvent{Addr: addr, Len: len(buf), Kind: Load, Time: as.clock.Now(), Region: r})
	return nil
}

// senseInto copies len(buf) bytes starting at region offset off into
// buf, applying stuck-at masks. When every covered page is untainted
// (so no stuck-at state exists) it degenerates to a bulk copy of the
// stored bytes and reports true.
func (r *Region) senseInto(buf []byte, off int) bool {
	if len(buf) == 0 {
		return true
	}
	ps := r.as.pageSize
	if r.as.fastPath && r.cleanPages(off/ps, (off+len(buf)-1)/ps) {
		r.copyStored(buf, off)
		return true
	}
	for i := range buf {
		o := off + i
		p := r.pages[o/ps]
		buf[i] = p.senseByte(o % ps)
	}
	return false
}

// loadDecoded performs a protected load of len(buf) bytes at region offset
// off, decoding every covered codeword. When every covered page is
// untainted the decode is skipped entirely — the taint invariant
// guarantees each word would decode VerdictClean and come back
// unmodified, so the load is a bulk copy of the stored bytes (reported
// as true, with no counters, events, or scrubbing side effects, exactly
// as the full path would behave).
func (as *AddressSpace) loadDecoded(r *Region, off int, buf []byte) (bool, error) {
	w := r.codec.WordBytes()
	c := r.codec.CheckBytes()
	ps := as.pageSize
	first := off / w * w
	last := (off + len(buf) + w - 1) / w * w
	if first == last {
		return true, nil
	}
	if as.fastPath && r.cleanPages(first/ps, (last-1)/ps) {
		r.copyStored(buf, off)
		return true, nil
	}
	word, check, owned := as.acquireScratch(w, c)
	defer as.releaseScratch(owned)
	for wo := first; wo < last; wo += w {
		p := r.pages[wo/ps]
		inPage := wo % ps
		wordIdx := inPage / w
		// Sense the stored word and its check bytes.
		for i := 0; i < w; i++ {
			word[i] = p.senseByte(inPage + i)
		}
		copy(check, p.check[wordIdx*c:(wordIdx+1)*c])

		verdict := r.codec.Decode(word, check)
		if verdict == VerdictUncorrectable {
			v, err := as.handleUncorrectable(r, wo, word, check)
			if err != nil {
				return false, err
			}
			verdict = v
		}
		if verdict == VerdictCorrected {
			as.counters.Corrected++
			r.markDirty(wo / ps)
			p.corrected++
			as.notifyECC(ECCEvent{Kind: ECCCorrected, Addr: r.base + Addr(wo), Time: as.clock.Now(), Region: r})
			if as.scrubOnCorrect {
				copy(p.data[inPage:inPage+w], word)
				copy(p.check[wordIdx*c:(wordIdx+1)*c], check)
			}
		}
		// Copy the decoded bytes that overlap the request.
		for i := 0; i < w; i++ {
			o := wo + i
			if o >= off && o < off+len(buf) {
				buf[o-off] = word[i]
			}
		}
	}
	return false, nil
}

// handleUncorrectable runs the software response for an uncorrectable
// error at region word offset wo. On successful recovery it re-senses and
// re-decodes the word into word/check and returns the new verdict;
// otherwise it returns a machine-check fault.
func (as *AddressSpace) handleUncorrectable(r *Region, wo int, word, check []byte) (Verdict, error) {
	as.counters.Uncorrectable++
	addr := r.base + Addr(wo)
	as.notifyECC(ECCEvent{Kind: ECCUncorrectable, Addr: addr, Time: as.clock.Now(), Region: r})
	if r.mc == nil || r.mc.HandleMC(as, MCEvent{Addr: addr, Region: r}) != MCRecovered {
		return VerdictUncorrectable, &Fault{Kind: FaultMachineCheck, Addr: addr}
	}
	// The handler claims to have repaired storage; retry once.
	w := r.codec.WordBytes()
	c := r.codec.CheckBytes()
	p := r.pages[wo/as.pageSize]
	inPage := wo % as.pageSize
	wordIdx := inPage / w
	for i := 0; i < w; i++ {
		word[i] = p.senseByte(inPage + i)
	}
	copy(check, p.check[wordIdx*c:(wordIdx+1)*c])
	v := r.codec.Decode(word, check)
	if v == VerdictUncorrectable {
		return v, &Fault{Kind: FaultMachineCheck, Addr: addr}
	}
	as.counters.Recovered++
	as.notifyECC(ECCEvent{Kind: ECCRecovered, Addr: addr, Time: as.clock.Now(), Region: r})
	return v, nil
}

// Store writes data at addr through the full memory path. Stores to
// read-only regions fault. In protected regions, partial codewords are
// read-modify-written: the untouched bytes are decoded first (which can
// itself raise a machine check), then the whole word is re-encoded.
func (as *AddressSpace) Store(addr Addr, data []byte) error {
	r, err := as.locate(addr, len(data))
	if err != nil {
		return err
	}
	if r.readOnly {
		return &Fault{Kind: FaultReadOnly, Addr: addr}
	}
	off := int(addr - r.base)
	if as.cache != nil {
		if err := as.cachedStore(addr, data); err != nil {
			return err
		}
	} else if r.codec == nil {
		r.writeBytes(off, data)
	} else if err := as.storeEncoded(r, off, data); err != nil {
		return err
	}
	as.counters.Stores++
	as.notifyAccess(AccessEvent{Addr: addr, Len: len(data), Kind: Store, Time: as.clock.Now(), Region: r})
	return nil
}

// writeBytes writes raw bytes at region offset off (no encoding).
func (r *Region) writeBytes(off int, data []byte) {
	ps := r.as.pageSize
	for len(data) > 0 {
		pi := off / ps
		r.markDirty(pi)
		p := r.pages[pi]
		inPage := off % ps
		n := copy(p.data[inPage:], data)
		data = data[n:]
		off += n
	}
}

// storeEncoded writes data at region offset off in a protected region,
// re-encoding every touched codeword.
func (as *AddressSpace) storeEncoded(r *Region, off int, data []byte) error {
	w := r.codec.WordBytes()
	c := r.codec.CheckBytes()
	ps := as.pageSize
	first := off / w * w
	last := (off + len(data) + w - 1) / w * w
	word, check, owned := as.acquireScratch(w, c)
	defer as.releaseScratch(owned)
	for wo := first; wo < last; wo += w {
		r.markDirty(wo / ps)
		p := r.pages[wo/ps]
		inPage := wo % ps
		wordIdx := inPage / w
		partial := wo < off || wo+w > off+len(data)
		if partial {
			if as.fastPath && !p.tainted {
				// The taint invariant says this word would sense as its
				// stored bytes and decode VerdictClean unchanged, so the
				// read-modify-write decode is a no-op: take the stored
				// bytes directly.
				copy(word, p.data[inPage:inPage+w])
			} else {
				// Read-modify-write: decode the existing word so latent
				// errors in the untouched bytes are handled, not laundered
				// into a fresh valid codeword.
				for i := 0; i < w; i++ {
					word[i] = p.senseByte(inPage + i)
				}
				copy(check, p.check[wordIdx*c:(wordIdx+1)*c])
				verdict := r.codec.Decode(word, check)
				if verdict == VerdictUncorrectable {
					v, err := as.handleUncorrectable(r, wo, word, check)
					if err != nil {
						return err
					}
					verdict = v
				}
				if verdict == VerdictCorrected {
					as.counters.Corrected++
					p.corrected++
					as.notifyECC(ECCEvent{Kind: ECCCorrected, Addr: r.base + Addr(wo), Time: as.clock.Now(), Region: r})
				}
			}
		}
		// Merge the new bytes.
		for i := 0; i < w; i++ {
			o := wo + i
			if o >= off && o < off+len(data) {
				word[i] = data[o-off]
			}
		}
		r.codec.Encode(word, check)
		copy(p.data[inPage:inPage+w], word)
		copy(p.check[wordIdx*c:(wordIdx+1)*c], check)
	}
	return nil
}

// notifyAccess fans an access event out to the observers.
func (as *AddressSpace) notifyAccess(ev AccessEvent) {
	for _, o := range as.accessObs {
		o.ObserveAccess(ev)
	}
}

// notifyECC fans an ECC event out to the observers.
func (as *AddressSpace) notifyECC(ev ECCEvent) {
	for _, o := range as.eccObs {
		o.ObserveECC(ev)
	}
}

// Typed accessors. All use little-endian byte order.

// LoadU64 loads a 64-bit value.
func (as *AddressSpace) LoadU64(addr Addr) (uint64, error) {
	var b [8]byte
	if err := as.Load(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// StoreU64 stores a 64-bit value.
func (as *AddressSpace) StoreU64(addr Addr, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return as.Store(addr, b[:])
}

// LoadU32 loads a 32-bit value.
func (as *AddressSpace) LoadU32(addr Addr) (uint32, error) {
	var b [4]byte
	if err := as.Load(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// StoreU32 stores a 32-bit value.
func (as *AddressSpace) StoreU32(addr Addr, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return as.Store(addr, b[:])
}

// LoadU16 loads a 16-bit value.
func (as *AddressSpace) LoadU16(addr Addr) (uint16, error) {
	var b [2]byte
	if err := as.Load(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}

// StoreU16 stores a 16-bit value.
func (as *AddressSpace) StoreU16(addr Addr, v uint16) error {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	return as.Store(addr, b[:])
}

// LoadU8 loads one byte.
func (as *AddressSpace) LoadU8(addr Addr) (byte, error) {
	var b [1]byte
	if err := as.Load(addr, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

// StoreU8 stores one byte.
func (as *AddressSpace) StoreU8(addr Addr, v byte) error {
	b := [1]byte{v}
	return as.Store(addr, b[:])
}

// LoadF64 loads a float64.
func (as *AddressSpace) LoadF64(addr Addr) (float64, error) {
	u, err := as.LoadU64(addr)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(u), nil
}

// StoreF64 stores a float64.
func (as *AddressSpace) StoreF64(addr Addr, v float64) error {
	return as.StoreU64(addr, math.Float64bits(v))
}

// LoadF32 loads a float32.
func (as *AddressSpace) LoadF32(addr Addr) (float32, error) {
	u, err := as.LoadU32(addr)
	if err != nil {
		return 0, err
	}
	return math.Float32frombits(u), nil
}

// StoreF32 stores a float32.
func (as *AddressSpace) StoreF32(addr Addr, v float32) error {
	return as.StoreU32(addr, math.Float32bits(v))
}

// Raw access (simulator plumbing: setup, recovery, ground-truth checks).

// ReadRaw copies the stored bytes at addr into buf without sensing stuck
// bits, without ECC decoding, and without notifying observers. Tests and
// the outcome classifier use it to inspect ground truth.
func (as *AddressSpace) ReadRaw(addr Addr, buf []byte) error {
	r, err := as.locate(addr, len(buf))
	if err != nil {
		return err
	}
	r.copyStored(buf, int(addr-r.base))
	return nil
}

// WriteRaw writes bytes at addr bypassing the read-only flag and access
// observers, re-encoding check storage so protected regions stay
// consistent. Region initialization (loading an index into a read-only
// cache) and software recovery use it.
func (as *AddressSpace) WriteRaw(addr Addr, data []byte) error {
	r, err := as.locate(addr, len(data))
	if err != nil {
		return err
	}
	off := int(addr - r.base)
	if r.codec == nil {
		r.writeBytes(off, data)
		return nil
	}
	// Widen to whole codewords so re-encoding is well defined; the
	// untouched bytes keep their stored (possibly erroneous) values.
	// Every touched word goes back through Encode, so the write cannot
	// violate the taint invariant on an untainted page; it is equally
	// unable to prove a tainted page clean (other words keep whatever
	// errors they had), so the taint flag is left as-is. A future raw
	// write path that skips the re-encode must taint the page instead.
	w := r.codec.WordBytes()
	c := r.codec.CheckBytes()
	first := off / w * w
	last := (off + len(data) + w - 1) / w * w
	ps := as.pageSize
	// The shared word scratch doubles as the widening buffer.
	wide, check, owned := as.acquireScratch(last-first, c)
	defer as.releaseScratch(owned)
	r.copyStored(wide, first)
	copy(wide[off-first:], data)
	for wo := first; wo < last; wo += w {
		word := wide[wo-first : wo-first+w]
		r.codec.Encode(word, check)
		r.markDirty(wo / ps)
		p := r.pages[wo/ps]
		inPage := wo % ps
		wordIdx := inPage / w
		copy(p.data[inPage:inPage+w], word)
		copy(p.check[wordIdx*c:(wordIdx+1)*c], check)
	}
	return nil
}

// Error injection (the Algorithm 1(a) primitive).

// FlipBit flips one stored data bit: bit index 0..7 within the byte at
// addr. It models a soft error: the flip is persistent until the byte is
// overwritten, invisible to ECC until the word is next decoded, and does
// not notify observers.
func (as *AddressSpace) FlipBit(addr Addr, bit int) error {
	if bit < 0 || bit > 7 {
		return fmt.Errorf("simmem: bit index %d out of range [0,7]", bit)
	}
	r, err := as.locate(addr, 1)
	if err != nil {
		return err
	}
	off := int(addr - r.base)
	r.taintPage(off / as.pageSize)
	p := r.pages[off/as.pageSize]
	p.data[off%as.pageSize] ^= 1 << bit
	return nil
}

// FlipCheckBit flips one stored check bit of the codeword containing addr
// (bit counts across the word's check bytes, LSB-first). It returns an
// error for unprotected regions.
func (as *AddressSpace) FlipCheckBit(addr Addr, bit int) error {
	r, err := as.locate(addr, 1)
	if err != nil {
		return err
	}
	if r.codec == nil {
		return fmt.Errorf("simmem: region %q has no check storage", r.name)
	}
	c := r.codec.CheckBytes()
	if bit < 0 || bit >= c*8 {
		return fmt.Errorf("simmem: check bit %d out of range [0,%d)", bit, c*8)
	}
	w := r.codec.WordBytes()
	off := int(addr-r.base) / w * w
	r.taintPage(off / as.pageSize)
	p := r.pages[off/as.pageSize]
	wordIdx := (off % as.pageSize) / w
	p.check[wordIdx*c+bit/8] ^= 1 << (bit % 8)
	return nil
}

// StickBit installs a stuck-at fault on one data bit: the cell will sense
// as value (0 or 1) regardless of what is stored, modelling a hard error.
// Overwrites do not clear it; only frame replacement (page retirement)
// does.
func (as *AddressSpace) StickBit(addr Addr, bit, value int) error {
	if bit < 0 || bit > 7 {
		return fmt.Errorf("simmem: bit index %d out of range [0,7]", bit)
	}
	if value != 0 && value != 1 {
		return fmt.Errorf("simmem: stuck value must be 0 or 1, got %d", value)
	}
	r, err := as.locate(addr, 1)
	if err != nil {
		return err
	}
	off := int(addr - r.base)
	r.taintPage(off / as.pageSize)
	p := r.pages[off/as.pageSize]
	i := off % as.pageSize
	mask := byte(1) << bit
	if value == 1 {
		if p.stuckSet == nil {
			p.stuckSet = make([]byte, as.pageSize)
		}
		p.stuckSet[i] |= mask
		if p.stuckClr != nil {
			p.stuckClr[i] &^= mask
		}
	} else {
		if p.stuckClr == nil {
			p.stuckClr = make([]byte, as.pageSize)
		}
		p.stuckClr[i] |= mask
		if p.stuckSet != nil {
			p.stuckSet[i] &^= mask
		}
	}
	return nil
}

// ReplaceFrame models OS page retirement: the page's frame is replaced by a
// fresh one, clearing stuck-at faults and corrected-error counters. The new
// frame is filled from the region's backing store if it has one, and zeroed
// otherwise; check storage is re-encoded.
func (r *Region) ReplaceFrame(pageIdx int) error {
	if pageIdx < 0 || pageIdx >= len(r.pages) {
		return fmt.Errorf("simmem: page %d out of range [0,%d)", pageIdx, len(r.pages))
	}
	// Frame replacement is a corruption channel for taint purposes:
	// the incoming frame's contents come from outside the encoded
	// store path, so the page is tainted for the duration of the swap …
	r.taintPage(pageIdx)
	p := r.pages[pageIdx]
	p.stuckSet = nil
	p.stuckClr = nil
	p.corrected = 0
	p.replaced++
	ps := r.as.pageSize
	if r.backing != nil {
		copy(p.data, r.backing[pageIdx*ps:(pageIdx+1)*ps])
	} else {
		for i := range p.data {
			p.data[i] = 0
		}
	}
	if r.codec != nil {
		w := r.codec.WordBytes()
		c := r.codec.CheckBytes()
		check, _, owned := r.as.acquireScratch(c, 0)
		defer r.as.releaseScratch(owned)
		for wo := 0; wo < ps; wo += w {
			r.codec.Encode(p.data[wo:wo+w], check)
			copy(p.check[wo/w*c:(wo/w+1)*c], check)
		}
	}
	// … and verifiably clean once it completes: the stuck-at state is
	// gone and every word just went through a full re-encode (an
	// unprotected frame is trivially clean — sensed bytes equal stored
	// bytes with no masks). Note the replacement can still launder a
	// semantically wrong backing copy into valid codewords; taint tracks
	// decode visibility, not ground truth, which the outcome classifier
	// checks against raw bytes.
	r.clearTaint(pageIdx)
	return nil
}

// Backing-store (persistent storage) operations.

// FlushPage copies page i's current stored bytes to the backing store —
// one step of a periodic checkpoint (the Par+R five-minute flush).
func (r *Region) FlushPage(i int) error {
	if r.backing == nil {
		return fmt.Errorf("simmem: region %q has no backing store", r.name)
	}
	if i < 0 || i >= len(r.pages) {
		return fmt.Errorf("simmem: page %d out of range [0,%d)", i, len(r.pages))
	}
	ps := r.as.pageSize
	// The backing store is snapshotted too, so flushing dirties the page.
	r.markDirty(i)
	copy(r.backing[i*ps:(i+1)*ps], r.pages[i].data)
	return nil
}

// FlushAll checkpoints every page to the backing store.
func (r *Region) FlushAll() error {
	for i := range r.pages {
		if err := r.FlushPage(i); err != nil {
			return err
		}
	}
	return nil
}

// RestoreWord reloads the codeword (or single byte, for unprotected
// regions) containing addr from the backing store and re-encodes its check
// storage. Par+R recovery calls this after a parity detection.
func (r *Region) RestoreWord(addr Addr) error {
	if r.backing == nil {
		return fmt.Errorf("simmem: region %q has no backing store", r.name)
	}
	if !r.Contains(addr) {
		return &Fault{Kind: FaultOutOfRange, Addr: addr}
	}
	w := 1
	if r.codec != nil {
		w = r.codec.WordBytes()
	}
	off := int(addr-r.base) / w * w
	if err := r.as.WriteRaw(r.base+Addr(off), r.backing[off:off+w]); err != nil {
		return err
	}
	// The repaired word is clean, but a single-word restore cannot by
	// itself prove the rest of the page is; re-derive the taint state by
	// verification so a page whose only error was just repaired returns
	// to the fast path.
	pi := off / r.as.pageSize
	if r.pages[pi].tainted && r.verifyPageClean(pi) {
		r.clearTaint(pi)
	}
	return nil
}

// BackingBytes returns the clean persistent copy of the byte range
// [addr, addr+n), for recoverability verification in tests.
func (r *Region) BackingBytes(addr Addr, n int) ([]byte, error) {
	if r.backing == nil {
		return nil, fmt.Errorf("simmem: region %q has no backing store", r.name)
	}
	off := int(addr - r.base)
	if !r.Contains(addr) || off+n > r.size {
		return nil, &Fault{Kind: FaultOutOfRange, Addr: addr}
	}
	out := make([]byte, n)
	copy(out, r.backing[off:off+n])
	return out, nil
}

// ScrubPage decodes every codeword of page i like a background memory
// scrubber: corrected patterns are optionally written back, uncorrectable
// patterns are counted but raise no machine check (scrubbers log and move
// on). It emits no access or ECC events and returns the counts. Scrubbing
// an unprotected region reports zeroes — without a code there is nothing
// to detect (the paper's §VI-C suggests memtest-style scans for such
// regions, which compare against known patterns instead; see the recovery
// package).
func (r *Region) ScrubPage(i int, writeBack bool) (corrected, uncorrectable int, err error) {
	if i < 0 || i >= len(r.pages) {
		return 0, 0, fmt.Errorf("simmem: page %d out of range [0,%d)", i, len(r.pages))
	}
	if r.codec == nil {
		// Without a code there is nothing to decode, but absent
		// stuck-at state an unprotected page trivially satisfies the
		// taint invariant (sensing is a plain copy), so the scan
		// re-admits it to the fast path.
		if !r.pages[i].hasStuck() {
			r.clearTaint(i)
		}
		return 0, 0, nil
	}
	p := r.pages[i]
	w := r.codec.WordBytes()
	c := r.codec.CheckBytes()
	ps := r.as.pageSize
	word, check, owned := r.as.acquireScratch(w, c)
	defer r.as.releaseScratch(owned)
	for wo := 0; wo < ps; wo += w {
		for k := 0; k < w; k++ {
			word[k] = p.senseByte(wo + k)
		}
		wordIdx := wo / w
		copy(check, p.check[wordIdx*c:(wordIdx+1)*c])
		switch r.codec.Decode(word, check) {
		case VerdictCorrected:
			corrected++
			r.markDirty(i)
			p.corrected++
			if writeBack {
				copy(p.data[wo:wo+w], word)
				copy(p.check[wordIdx*c:(wordIdx+1)*c], check)
			}
		case VerdictUncorrectable:
			uncorrectable++
		}
	}
	// The scrub just proved the taint invariant when the page has no
	// stuck-at state, no word was uncorrectable, and every corrected
	// word was written back (a clean sweep needs no write-back at all):
	// the page returns to the fast path. Corrections left un-written
	// keep their erroneous stored bytes, so the page stays tainted.
	if uncorrectable == 0 && !p.hasStuck() && (writeBack || corrected == 0) {
		r.clearTaint(i)
	}
	return corrected, uncorrectable, nil
}

// SampleAddr picks a uniformly random used byte address across the regions
// accepted by filter (all regions when filter is nil), weighting regions by
// their used sizes — the paper's "randomly select a valid byte-aligned
// application memory address". It returns false when no accepted region
// has any used bytes.
func (as *AddressSpace) SampleAddr(rng *rand.Rand, filter func(*Region) bool) (Addr, bool) {
	total := 0
	for _, r := range as.regions {
		if filter == nil || filter(r) {
			total += r.used
		}
	}
	if total == 0 {
		return 0, false
	}
	n := rng.Intn(total)
	for _, r := range as.regions {
		if filter != nil && !filter(r) {
			continue
		}
		if n < r.used {
			return r.base + Addr(n), true
		}
		n -= r.used
	}
	// Unreachable: the weights sum to total.
	return 0, false
}
