package hrmsim

import "testing"

func TestSimulateLifetimeDefaultsClean(t *testing.T) {
	res, err := SimulateLifetime(LifetimeConfig{Hours: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 2000 errors/month over 2 hours on a tiny app: most likely a
	// handful of errors at most, and availability stays high.
	if res.Availability < 0.9 {
		t.Errorf("availability = %g", res.Availability)
	}
	if res.Requests == 0 {
		t.Error("no requests served")
	}
}

func TestSimulateLifetimeProtectionOrdering(t *testing.T) {
	base := LifetimeConfig{
		ErrorsPerMonth: 150000,
		SoftFraction:   1,
		Hours:          12,
		Seed:           3,
	}
	results := map[Protection]*LifetimeResult{}
	for _, p := range []Protection{ProtectNone, ProtectSECDEDScrub} {
		cfg := base
		cfg.Protection = p
		res, err := SimulateLifetime(cfg)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		results[p] = res
	}
	none := results[ProtectNone]
	scrubbed := results[ProtectSECDEDScrub]
	if scrubbed.Crashes > none.Crashes {
		t.Errorf("SEC-DED+scrub crashed more (%d) than unprotected (%d)",
			scrubbed.Crashes, none.Crashes)
	}
	if scrubbed.Incorrect > none.Incorrect {
		t.Errorf("SEC-DED+scrub more incorrect (%d) than unprotected (%d)",
			scrubbed.Incorrect, none.Incorrect)
	}
	if scrubbed.ScrubPasses == 0 {
		t.Error("scrubber never ran")
	}
	if none.Crashes == 0 && none.Incorrect == 0 {
		t.Error("unprotected baseline unaffected; comparison vacuous")
	}
}

func TestSimulateLifetimeValidation(t *testing.T) {
	if _, err := SimulateLifetime(LifetimeConfig{App: AppKVStore}); err == nil {
		t.Error("non-idempotent app accepted")
	}
	if _, err := SimulateLifetime(LifetimeConfig{Protection: "asbestos"}); err == nil {
		t.Error("unknown protection accepted")
	}
	if _, err := SimulateLifetime(LifetimeConfig{Size: SizeLarge}); err == nil {
		t.Error("unsupported size accepted")
	}
}
