package hrmsim

import (
	"runtime"
	"testing"
	"time"

	"hrmsim/internal/apps"
	"hrmsim/internal/apps/websearch"
	"hrmsim/internal/core"
	"hrmsim/internal/ecc"
	"hrmsim/internal/faults"
	"hrmsim/internal/stats"
)

// benchLab builds a lab at benchmark scale. Campaign cells are cached
// within one lab, so each benchmark iteration measures the cost of
// regenerating its artifact from scratch.
func benchLab(b *testing.B) *Lab {
	b.Helper()
	lab, err := NewLab(LabConfig{Trials: 30, TimingTrials: 120, Watchpoints: 160, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return lab
}

// benchExperiment regenerates one of the paper's tables/figures per
// iteration. Run with -v to see the regenerated artifact.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lab := benchLab(b)
		rep, err := lab.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			b.Logf("%s\n%s", rep.Title, rep.Text)
		}
	}
}

// One benchmark per table and figure of the paper's evaluation.

// BenchmarkTable1ECCTechniques regenerates Table 1 (technique capability
// and added capacity, with codec self-tests).
func BenchmarkTable1ECCTechniques(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable3RegionSizes regenerates Table 3 (application memory
// region sizes).
func BenchmarkTable3RegionSizes(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable4DesignDimensions regenerates Table 4 (the HRM design
// space dimensions).
func BenchmarkTable4DesignDimensions(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkFigure3InterApplication regenerates Fig. 3 (crash probability
// and incorrect-result rate across the three applications, soft vs hard).
func BenchmarkFigure3InterApplication(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFigure4PerRegion regenerates Fig. 4 (per-region vulnerability
// for every application).
func BenchmarkFigure4PerRegion(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFigure5aTiming regenerates Fig. 5a (time-to-outcome
// distributions: quick-to-crash vs periodically incorrect).
func BenchmarkFigure5aTiming(b *testing.B) { benchExperiment(b, "fig5a") }

// BenchmarkFigure5bSafeRatios regenerates Fig. 5b (safe-ratio densities
// per WebSearch region).
func BenchmarkFigure5bSafeRatios(b *testing.B) { benchExperiment(b, "fig5b") }

// BenchmarkFigure6ErrorSeverity regenerates Fig. 6 (WebSearch
// vulnerability by error type).
func BenchmarkFigure6ErrorSeverity(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkTable5Recoverability regenerates Table 5 (implicit/explicit
// recoverable memory in WebSearch).
func BenchmarkTable5Recoverability(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkTable6DesignPoints regenerates Table 6 (the five design points:
// cost savings, crashes, availability, incorrect rate).
func BenchmarkTable6DesignPoints(b *testing.B) { benchExperiment(b, "table6") }

// BenchmarkFigure8TolerableErrors regenerates Fig. 8 (tolerable error
// rates per availability target).
func BenchmarkFigure8TolerableErrors(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFigure9ChannelProvisioning regenerates Fig. 9 (per-channel
// heterogeneous DIMM provisioning).
func BenchmarkFigure9ChannelProvisioning(b *testing.B) { benchExperiment(b, "fig9") }

// Micro-benchmarks of the reproduction's moving parts.

// BenchmarkCharacterizeTrial measures one full injection trial (build,
// inject, run workload, classify) per application.
func BenchmarkCharacterizeTrial(b *testing.B) {
	for _, app := range Apps() {
		app := app
		b.Run(string(app), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c, err := Characterize(CharacterizeConfig{
					App:    app,
					Error:  HardSingleBit,
					Trials: 1,
					Size:   SizeSmall,
					Seed:   int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				_ = c
			}
		})
	}
}

// BenchmarkCampaignLifecycle compares the two trial-provisioning
// lifecycles on a Fig. 3-style WebSearch soft-error campaign with a
// warmed-up service (90% of the workload precedes injection, as when
// characterizing errors that strike a long-running process). The fresh
// lifecycle rebuilds and re-serves the warmup prefix every trial; the
// snapshot lifecycle pays build + warmup once per worker and rolls the
// instance back per trial. Campaign results are bit-identical between
// the two (TestSnapshotLifecycleMatchesFreshBuild); only trials/s moves.
func BenchmarkCampaignLifecycle(b *testing.B) {
	builder, err := NewBuilder(AppWebSearch, SizeMedium, 1)
	if err != nil {
		b.Fatal(err)
	}
	benchCampaignLifecycles(b, "", builder)

	// SEC-DED on every region: each load decodes a codeword unless the
	// clean-page fast path short-circuits it, so this variant is the one
	// the fast path moves most. The slowpath run is the same campaign
	// with the fast path forced off — the before/after pair for the
	// optimization.
	secded := benchWebSearchSECDED(b)
	benchCampaignLifecycles(b, "secded-", secded)
	benchCampaignLifecycles(b, "secded-slowpath-", slowPathBuilder{secded.(apps.SnapshotBuilder)})
}

// benchWebSearchSECDED builds the SizeMedium WebSearch workload with
// SEC-DED protecting all three regions.
func benchWebSearchSECDED(b *testing.B) apps.Builder {
	b.Helper()
	cfg := websearch.DefaultConfig(1)
	cfg.RequestCost = 10 * time.Second
	cfg.Docs, cfg.Vocab, cfg.MinTerms, cfg.MaxTerms = 1024, 512, 6, 24
	cfg.Queries, cfg.CacheSlots = 120, 256
	cfg.PrivateCodec = ecc.NewSECDED()
	cfg.HeapCodec = ecc.NewSECDED()
	cfg.StackCodec = ecc.NewSECDED()
	builder, err := websearch.NewBuilder(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return builder
}

// slowPathBuilder forces built instances through the reference slow
// memory path (fast path off), for before/after comparison.
type slowPathBuilder struct {
	apps.SnapshotBuilder
}

func (sb slowPathBuilder) Build() (apps.App, error) {
	app, err := sb.SnapshotBuilder.Build()
	if err != nil {
		return nil, err
	}
	app.Space().SetFastPath(false)
	return app, nil
}

func (sb slowPathBuilder) BuildSnapshot() (apps.SnapshotApp, error) {
	app, err := sb.SnapshotBuilder.BuildSnapshot()
	if err != nil {
		return nil, err
	}
	app.Space().SetFastPath(false)
	return app, nil
}

func benchCampaignLifecycles(b *testing.B, prefix string, builder apps.Builder) {
	b.Helper()
	golden, err := core.GoldenRun(builder)
	if err != nil {
		b.Fatal(err)
	}
	warmup := len(golden) * 9 / 10
	const trials = 16
	for _, tc := range []struct {
		name string
		lc   core.Lifecycle
	}{
		{"fresh", core.LifecycleFresh},
		{"snapshot", core.LifecycleSnapshot},
	} {
		b.Run(prefix+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(core.CampaignConfig{
					Builder:     builder,
					Lifecycle:   tc.lc,
					Spec:        faults.SingleBitSoft,
					Trials:      trials,
					Seed:        1,
					Warmup:      warmup,
					Parallelism: 1,
					Golden:      golden,
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(trials*b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}

// BenchmarkSECDEDGap measures the SEC-DED decode tax directly: the same
// snapshot-lifecycle WebSearch soft-error campaign, unprotected vs
// SEC-DED on every region, timed in interleaved rounds within one
// benchmark run. It reports secded_vs_noecc_ratio — SEC-DED campaign
// wall time over no-ECC campaign wall time (1.0 = protection is free) —
// the lower-is-better metric scripts/bench_compare.sh caps at 1.15,
// enforcing the "SEC-DED within 15% of no-ECC" target. The reported
// value is the ratio of per-side minima across the rounds: a transient
// load spike on a shared CI box only ever inflates a round's time, so
// each side's minimum is its least-contaminated observation, and their
// ratio is robust to spikes landing on either side in any round.
// Measuring a ratio in one process also transfers across machines far
// better than absolute trials/s.
func BenchmarkSECDEDGap(b *testing.B) {
	noecc, err := NewBuilder(AppWebSearch, SizeMedium, 1)
	if err != nil {
		b.Fatal(err)
	}
	secded := benchWebSearchSECDED(b)
	const trials = 24
	const rounds = 6
	// Each timed window runs several whole campaigns regardless of
	// -benchtime, so even a 1x capture times windows long enough for the
	// ratio to be stable; many short windows beat few long ones because
	// the per-side minimum only needs one spike-free window per side.
	const reps = 2
	campaign := func(builder apps.Builder, golden []uint64, warmup int) time.Duration {
		start := time.Now()
		for i := 0; i < reps*b.N; i++ {
			if _, err := core.Run(core.CampaignConfig{
				Builder:     builder,
				Lifecycle:   core.LifecycleSnapshot,
				Spec:        faults.SingleBitSoft,
				Trials:      trials,
				Seed:        1,
				Warmup:      warmup,
				Parallelism: 1,
				Golden:      golden,
			}); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(start)
	}
	noeccGolden, err := core.GoldenRun(noecc)
	if err != nil {
		b.Fatal(err)
	}
	secdedGolden, err := core.GoldenRun(secded)
	if err != nil {
		b.Fatal(err)
	}
	// One untimed campaign per side warms code and data caches, and the
	// GC fence before each timed window means neither side pays garbage
	// the other side left behind. Alternating which side goes first each
	// round keeps slow drifts (turbo decay, thermal throttle) from
	// systematically taxing whichever side would otherwise always run
	// second.
	runNoecc := func() time.Duration { return campaign(noecc, noeccGolden, len(noeccGolden)*9/10) }
	runSecded := func() time.Duration { return campaign(secded, secdedGolden, len(secdedGolden)*9/10) }
	runNoecc()
	runSecded()
	b.ResetTimer()
	var minNoecc, minSecded time.Duration
	for r := 0; r < rounds; r++ {
		first, second := runNoecc, runSecded
		firstMin, secondMin := &minNoecc, &minSecded
		if r%2 == 1 {
			first, second = second, first
			firstMin, secondMin = secondMin, firstMin
		}
		runtime.GC()
		t1 := first()
		runtime.GC()
		t2 := second()
		if r == 0 || t1 < *firstMin {
			*firstMin = t1
		}
		if r == 0 || t2 < *secondMin {
			*secondMin = t2
		}
	}
	b.ReportMetric(float64(minSecded)/float64(minNoecc), "secded_vs_noecc_ratio")
}

// BenchmarkAdaptiveCampaign pits the classic fixed-N trial plan against
// the CI-targeted adaptive planner on the same WebSearch soft-error
// campaign (same seed, same trial budget). Besides wall-clock time, each
// variant reports trials-to-target-ci — how many trials it spent to
// deliver its crash-probability estimate. The plan is deterministic (the
// stopping boundaries depend only on trial outcomes, which depend only
// on the seed), so the metric is machine-independent and scripts/
// bench_compare.sh ratchets it: the adaptive planner must keep reaching
// the target CI without spending more trials than the committed capture.
func BenchmarkAdaptiveCampaign(b *testing.B) {
	builder, err := NewBuilder(AppWebSearch, SizeSmall, 1)
	if err != nil {
		b.Fatal(err)
	}
	golden, err := core.GoldenRun(builder)
	if err != nil {
		b.Fatal(err)
	}
	const budget = 400
	rule := stats.SequentialStopping{
		TargetHalfWidth: 0.04,
		Level:           0.90,
		MinTrials:       30,
		MaxTrials:       budget,
	}
	for _, tc := range []struct {
		name    string
		planner func() core.TrialPlanner
	}{
		{"fixed", func() core.TrialPlanner { return nil }},
		{"adaptive", func() core.TrialPlanner { return core.NewAdaptivePlanner(rule) }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var planned int
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.CampaignConfig{
					Builder: builder,
					Spec:    faults.SingleBitSoft,
					Trials:  budget,
					Seed:    1,
					Golden:  golden,
					Planner: tc.planner(),
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.PlanFinal {
					b.Fatalf("non-final plan after %d of %d trials", res.Planned, budget)
				}
				planned = res.Planned
			}
			b.ReportMetric(float64(planned), "trials-to-target-ci")
		})
	}
}

// BenchmarkGoldenWorkload measures running each application's full client
// workload on simulated memory (no injection).
func BenchmarkGoldenWorkload(b *testing.B) {
	for _, app := range Apps() {
		app := app
		b.Run(string(app), func(b *testing.B) {
			builder, err := NewBuilder(app, SizeSmall, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inst, err := builder.Build()
				if err != nil {
					b.Fatal(err)
				}
				for q := 0; q < inst.NumRequests(); q++ {
					if _, err := inst.Serve(q); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkDesignSpaceSearch measures the exhaustive Fig. 7 planning
// search over 216 candidate designs.
func BenchmarkDesignSpaceSearch(b *testing.B) {
	vulns := PaperWebSearchVulnerability()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Plan(PlanConfig{Vulnerabilities: vulns}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccessProfile measures the full watchpoint-monitored workload
// analysis.
func BenchmarkAccessProfile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := AccessProfile(AccessProfileConfig{
			App:         AppWebSearch,
			Size:        SizeSmall,
			Watchpoints: 200,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
