package design

import (
	"fmt"
	"sort"

	"hrmsim/internal/ecc"
)

// ChannelAssignment maps one memory channel to the protection class of the
// DIMMs it carries and the regions placed on it — the paper's Fig. 9
// proposal that heterogeneous provisioning needs no new hardware beyond
// per-channel memory controllers driving different DIMM types.
type ChannelAssignment struct {
	// Channel is the channel index.
	Channel int
	// Technique is the protection of the DIMMs on this channel.
	Technique ecc.Technique
	// LessTested marks cheaper, less-tested DIMMs.
	LessTested bool
	// Regions are the region names whose data the channel hosts.
	Regions []string
	// Bytes is the capacity consumed on this channel.
	Bytes int64
}

// protClass groups regions that can share DIMMs.
type protClass struct {
	technique  ecc.Technique
	lessTested bool
}

// AssignChannels places each region of a design point onto memory
// channels, where every channel carries one DIMM type (one protection
// class). Regions of the same class share channels; the assignment is a
// first-fit decreasing pack. It fails if the point needs more channels
// than the system has or a region exceeds total capacity of its class's
// channels.
func AssignChannels(channels int, channelCapacity int64, regionBytes map[string]int64, d DesignPoint) ([]ChannelAssignment, error) {
	if channels <= 0 || channelCapacity <= 0 {
		return nil, fmt.Errorf("design: need positive channels (%d) and capacity (%d)", channels, channelCapacity)
	}
	// Group regions by protection class, deterministically.
	classes := map[protClass][]string{}
	classBytes := map[protClass]int64{}
	var names []string
	for name := range regionBytes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m, ok := d.Regions[name]
		if !ok {
			return nil, fmt.Errorf("design: point %q has no mapping for region %q", d.Name, name)
		}
		pc := protClass{technique: m.Technique, lessTested: m.LessTested}
		classes[pc] = append(classes[pc], name)
		classBytes[pc] += regionBytes[name]
	}
	// Order classes deterministically by descending demand.
	var order []protClass
	for pc := range classes {
		order = append(order, pc)
	}
	sort.Slice(order, func(i, j int) bool {
		if classBytes[order[i]] != classBytes[order[j]] {
			return classBytes[order[i]] > classBytes[order[j]]
		}
		return order[i].technique < order[j].technique
	})

	var out []ChannelAssignment
	next := 0
	for _, pc := range order {
		remaining := classBytes[pc]
		first := true
		for remaining > 0 || first {
			if next >= channels {
				return nil, fmt.Errorf("design: point %q needs more than %d channels", d.Name, channels)
			}
			take := remaining
			if take > channelCapacity {
				take = channelCapacity
			}
			ca := ChannelAssignment{
				Channel:    next,
				Technique:  pc.technique,
				LessTested: pc.lessTested,
				Bytes:      take,
			}
			if first {
				ca.Regions = classes[pc]
			}
			out = append(out, ca)
			next++
			remaining -= take
			first = false
		}
	}
	return out, nil
}
