package core

import (
	"reflect"
	"testing"

	"hrmsim/internal/apps"
	"hrmsim/internal/faults"
)

// slowPathBuilder wraps a SnapshotBuilder and forces every built
// instance through the reference slow memory path (per-byte sensing,
// per-word decoding), giving campaign-level differential coverage of
// the clean-page fast path.
type slowPathBuilder struct {
	apps.SnapshotBuilder
}

func (b slowPathBuilder) Build() (apps.App, error) {
	app, err := b.SnapshotBuilder.Build()
	if err != nil {
		return nil, err
	}
	app.Space().SetFastPath(false)
	return app, nil
}

func (b slowPathBuilder) BuildSnapshot() (apps.SnapshotApp, error) {
	app, err := b.SnapshotBuilder.BuildSnapshot()
	if err != nil {
		return nil, err
	}
	app.Space().SetFastPath(false)
	return app, nil
}

// TestCampaignFastSlowEquivalence pins the fast path's bit-identity at
// full campaign scale: for every application, error type, and lifecycle,
// a campaign run on the fast path produces trial results deeply equal to
// the same campaign forced through the slow path — same outcomes, crash
// reasons, request counts, and virtual timestamps.
func TestCampaignFastSlowEquivalence(t *testing.T) {
	builders := map[string]func(*testing.T, int64) apps.Builder{
		"websearch": wsBuilder,
		"kvstore":   kvBuilder,
		"graphmine": gmBuilder,
	}
	specs := map[string]faults.Spec{
		"soft": faults.SingleBitSoft,
		"hard": faults.SingleBitHard,
	}
	for appName, mk := range builders {
		for specName, spec := range specs {
			t.Run(appName+"/"+specName, func(t *testing.T) {
				t.Parallel()
				b := mk(t, 11)
				sb, ok := b.(apps.SnapshotBuilder)
				if !ok {
					t.Fatalf("%s builder does not support snapshots", appName)
				}
				slow := slowPathBuilder{sb}
				golden, err := GoldenRun(b)
				if err != nil {
					t.Fatal(err)
				}
				warmup := len(golden) / 4
				for _, lc := range []Lifecycle{LifecycleFresh, LifecycleSnapshot} {
					fast := runLifecycle(t, b, spec, golden, lc, 4, warmup)
					ref := runLifecycle(t, slow, spec, golden, lc, 4, warmup)
					if !reflect.DeepEqual(fast.Trials, ref.Trials) {
						for i := range fast.Trials {
							if !reflect.DeepEqual(fast.Trials[i], ref.Trials[i]) {
								t.Fatalf("lifecycle %v: trial %d diverged:\nfast: %+v\nslow: %+v",
									lc, i, fast.Trials[i], ref.Trials[i])
							}
						}
						t.Fatalf("lifecycle %v: trials diverged", lc)
					}
				}
			})
		}
	}
}
