package core

import (
	"fmt"

	"hrmsim/internal/stats"
)

// The trial-planning layer: the supervisor no longer hard-codes
// "dispatch indices 0..N-1" — it consults a TrialPlanner for the next
// index to run and, after every result, for a stop/continue verdict.
// FixedPlanner reproduces the classic fixed-N campaign bit-identically;
// AdaptivePlanner stops as soon as the Wilson CI half-width on the
// crash probability reaches a requested target, so trials flow to the
// cells whose vulnerability estimates are still uncertain instead of
// being spread uniformly.
//
// Determinism contract: a planner's dispatched index set must be a pure
// function of (its configuration, the trial results), never of worker
// parallelism or result arrival order. AdaptivePlanner guarantees this
// by evaluating its stopping rule only at precomputed boundaries, and
// only once the contiguous prefix below a boundary is fully resolved —
// so a campaign run at -parallelism 8 stops at exactly the same trial
// count as at -parallelism 1, and a resumed run replays to exactly the
// same verdicts as an uninterrupted one.

// PlanState is the planner's answer to "what should the supervisor do
// next?" (TrialPlanner.Next).
type PlanState int

const (
	// PlanDispatch: the returned index should run now.
	PlanDispatch PlanState = iota
	// PlanWait: nothing to dispatch until more in-flight results land
	// (the planner is holding at an evaluation boundary).
	PlanWait
	// PlanDone: the plan is exhausted; no further trials will run.
	PlanDone
)

// String returns the state name.
func (s PlanState) String() string {
	switch s {
	case PlanDispatch:
		return "dispatch"
	case PlanWait:
		return "wait"
	case PlanDone:
		return "done"
	default:
		return fmt.Sprintf("planstate(%d)", int(s))
	}
}

// PlannerDecision is one stop/continue verdict of an adaptive planner,
// evaluated over the fully-resolved trial prefix [0, Boundary). The
// supervisor journals the decision stream (see Journal.AppendDecision)
// so a resumed campaign's replay is auditable record-for-record.
type PlannerDecision struct {
	// Boundary is the evaluation boundary: every trial index in
	// [0, Boundary) had a result when the verdict was computed.
	Boundary int
	// Completed and Crashes count the classified trials in the prefix
	// and how many of them crashed — the stopping rule's observation.
	Completed int
	Crashes   int
	// HalfWidth is the Wilson CI half-width of the crash probability at
	// the rule's confidence level (1 when no trial has completed).
	HalfWidth float64
	// Target is the requested half-width.
	Target float64
	// Stop reports the campaign ends at this boundary; Exhausted marks
	// a stop forced by the MaxTrials budget rather than a reached
	// target.
	Stop      bool
	Exhausted bool
	// NextBoundary is where the rule will be evaluated next (0 when
	// Stop).
	NextBoundary int
	// Replayed marks a verdict re-derived from resumed journal records
	// during Start, as opposed to one computed from trials run fresh.
	Replayed bool
}

// TrialPlanner decides which trial indices a campaign runs and when it
// stops. The supervisor serializes all calls (planners need no internal
// locking) in this order: one Start, then interleaved Next/Observe/
// Budget/TakeDecisions until Next returns PlanDone and every dispatched
// trial has been observed.
type TrialPlanner interface {
	// Start resets the planner for a campaign owning indices [lo, hi)
	// of a trials-sized index space, seeding it with resumed results
	// from a previous interrupted run (keyed by index; may be nil).
	Start(lo, hi, trials int, resumed map[int]TrialResult) error
	// Next returns the next trial index to dispatch, or the reason
	// there is none (PlanWait / PlanDone).
	Next() (int, PlanState)
	// Observe feeds one finished trial (completed or aborted) back to
	// the planner. Every dispatched index is observed exactly once.
	Observe(tr TrialResult)
	// Budget returns the planner's current total-trial budget for the
	// owned range — the number of indices it intends to have results
	// for, including resumed ones — and whether that figure is final.
	// A fixed plan is final from the start; an adaptive plan's budget
	// grows boundary by boundary until the stopping rule fires.
	Budget() (total int, final bool)
	// TakeDecisions drains the stop/continue verdicts accumulated since
	// the previous call (nil for planners that make none).
	TakeDecisions() []PlannerDecision
}

// FixedPlanner is the classic campaign plan: every owned index runs
// exactly once, in ascending order, skipping resumed ones. It is the
// default (a nil CampaignConfig.Planner), and its dispatch sequence is
// bit-identical to the pre-planner engine — pinned by the lifecycle,
// resume, and shard-merge equivalence suites.
type FixedPlanner struct {
	lo, hi int
	next   int
	have   map[int]bool
}

// NewFixedPlanner returns the fixed-N plan.
func NewFixedPlanner() *FixedPlanner { return &FixedPlanner{} }

// Start implements TrialPlanner.
func (p *FixedPlanner) Start(lo, hi, trials int, resumed map[int]TrialResult) error {
	p.lo, p.hi = lo, hi
	p.next = lo
	p.have = nil
	if len(resumed) > 0 {
		p.have = make(map[int]bool, len(resumed))
		for i := range resumed {
			p.have[i] = true
		}
	}
	return nil
}

// Next implements TrialPlanner.
func (p *FixedPlanner) Next() (int, PlanState) {
	for p.next < p.hi {
		i := p.next
		p.next++
		if !p.have[i] {
			return i, PlanDispatch
		}
	}
	return 0, PlanDone
}

// Observe implements TrialPlanner (a fixed plan ignores results).
func (p *FixedPlanner) Observe(TrialResult) {}

// Budget implements TrialPlanner: the whole owned range, final.
func (p *FixedPlanner) Budget() (int, bool) { return p.hi - p.lo, true }

// TakeDecisions implements TrialPlanner (a fixed plan makes none).
func (p *FixedPlanner) TakeDecisions() []PlannerDecision { return nil }

// AdaptivePlanner runs trials in deterministic batches and stops the
// campaign once the Wilson CI half-width of the crash probability
// reaches the rule's target (or the MaxTrials budget is exhausted).
//
// Mechanics: indices dispatch in ascending order up to the current
// evaluation boundary; the stopping rule is evaluated exactly when the
// contiguous prefix [0, boundary) is fully resolved, and a "continue"
// verdict advances the boundary along the rule's schedule. Because
// every verdict is computed over a complete prefix, the dispatched set
// is independent of parallelism and arrival order — and an interrupted
// run can never have dispatched past the boundary an uninterrupted run
// would have stopped at, which is what makes -resume bit-identical.
//
// Adaptive plans require the whole index space (lo == 0, hi == trials):
// a worker shard sees only its slice of results, so a shard-local CI
// would be computed over a different prefix than the campaign's.
// Sharded adaptive campaigns are therefore rejected at Start.
type AdaptivePlanner struct {
	// Rule is the sequential stopping rule (target half-width,
	// confidence level, min/max-trials guard rails). MaxTrials is
	// clamped to the campaign size at Start.
	Rule stats.SequentialStopping
	// PauseAfterRounds, if positive, pauses the plan (Next → PlanDone,
	// Budget not final) after that many fresh "continue" verdicts
	// instead of running to the stopping rule's own verdict. A paused
	// campaign's partial results can be fed back via
	// CampaignConfig.Resume to continue exactly where it left off —
	// the batch-incremental mode the Lab's widest-CI-first scheduler
	// uses to interleave many cells through one worker pool.
	PauseAfterRounds int

	trials    int
	boundary  int // dispatch limit: indices < boundary may run
	next      int // next index to consider for dispatch
	contig    int // first index without a result
	have      []bool
	completed []bool // have && classified (aborted trials carry no outcome)
	crashed   []bool
	stopped   bool
	paused    bool
	exhausted bool
	replaying bool
	rounds    int
	decisions []PlannerDecision
	started   bool
}

// NewAdaptivePlanner returns an adaptive plan for the given stopping
// rule.
func NewAdaptivePlanner(rule stats.SequentialStopping) *AdaptivePlanner {
	return &AdaptivePlanner{Rule: rule}
}

// Start implements TrialPlanner. Resumed results replay through the
// same boundary evaluations a live run would have made (verdicts marked
// Replayed), so the plan continues from exactly where the interrupted
// run stopped.
func (p *AdaptivePlanner) Start(lo, hi, trials int, resumed map[int]TrialResult) error {
	if lo != 0 || hi != trials {
		return fmt.Errorf("core: the adaptive planner needs the whole trial index space, not shard [%d,%d) of %d — run adaptive campaigns unsharded", lo, hi, trials)
	}
	rule := p.Rule
	if rule.MaxTrials <= 0 || rule.MaxTrials > trials {
		rule.MaxTrials = trials
	}
	if rule.MinTrials > rule.MaxTrials {
		rule.MinTrials = rule.MaxTrials
	}
	if err := rule.Validate(); err != nil {
		return err
	}
	p.Rule = rule
	p.trials = trials
	p.boundary = rule.FirstBoundary()
	p.next = 0
	p.contig = 0
	p.have = make([]bool, trials)
	p.completed = make([]bool, trials)
	p.crashed = make([]bool, trials)
	p.stopped = false
	p.paused = false
	p.exhausted = false
	p.rounds = 0
	p.decisions = nil
	p.started = true

	p.replaying = true
	for i, tr := range resumed {
		p.record(i, tr)
	}
	p.advance()
	p.replaying = false
	return nil
}

// record stores one result without evaluating boundaries.
func (p *AdaptivePlanner) record(i int, tr TrialResult) {
	if i < 0 || i >= p.trials || p.have[i] {
		return
	}
	p.have[i] = true
	if tr.Disposition == DispositionCompleted {
		p.completed[i] = true
		p.crashed[i] = tr.Outcome == OutcomeCrash
	}
	for p.contig < p.trials && p.have[p.contig] {
		p.contig++
	}
}

// advance evaluates every boundary the resolved prefix has reached.
func (p *AdaptivePlanner) advance() {
	for !p.stopped && !p.paused && p.contig >= p.boundary {
		p.evaluate()
	}
}

// evaluate computes one stop/continue verdict at the current boundary.
func (p *AdaptivePlanner) evaluate() {
	completed, crashes := 0, 0
	for i := 0; i < p.boundary; i++ {
		if p.completed[i] {
			completed++
			if p.crashed[i] {
				crashes++
			}
		}
	}
	stop, half, err := p.Rule.ShouldStop(crashes, completed)
	if err != nil {
		// Unreachable (counts are internally consistent), but never
		// stall the campaign: treat as "continue".
		stop, half = false, 1
	}
	d := PlannerDecision{
		Boundary:  p.boundary,
		Completed: completed,
		Crashes:   crashes,
		HalfWidth: half,
		Target:    p.Rule.TargetHalfWidth,
		Stop:      stop,
		Replayed:  p.replaying,
	}
	switch {
	case stop:
		p.stopped = true
	case p.boundary >= p.Rule.MaxTrials:
		// Budget exhausted: stop without having reached the target.
		d.Stop, d.Exhausted = true, true
		p.stopped, p.exhausted = true, true
	default:
		d.NextBoundary = p.Rule.NextBoundary(p.boundary)
		p.boundary = d.NextBoundary
		if !p.replaying {
			p.rounds++
			if p.PauseAfterRounds > 0 && p.rounds >= p.PauseAfterRounds {
				p.paused = true
			}
		}
	}
	p.decisions = append(p.decisions, d)
}

// Next implements TrialPlanner.
func (p *AdaptivePlanner) Next() (int, PlanState) {
	limit := p.boundary
	if p.stopped || p.paused {
		// No new work past what the verdict covered; anything below the
		// boundary is already resolved (a verdict needs the full
		// prefix), so this loop cannot dispatch after a stop.
		limit = p.contig
	}
	for p.next < limit {
		i := p.next
		p.next++
		if !p.have[i] {
			return i, PlanDispatch
		}
	}
	if p.stopped || p.paused {
		return 0, PlanDone
	}
	return 0, PlanWait
}

// Observe implements TrialPlanner.
func (p *AdaptivePlanner) Observe(tr TrialResult) {
	p.record(tr.Index, tr)
	p.advance()
}

// Budget implements TrialPlanner: the current boundary — the trial
// count the plan has committed to so far — final once the stopping rule
// has fired. A paused plan's budget is not final: resuming it may grow
// the boundary further.
func (p *AdaptivePlanner) Budget() (int, bool) {
	if !p.started {
		return 0, false
	}
	return p.boundary, p.stopped
}

// TakeDecisions implements TrialPlanner.
func (p *AdaptivePlanner) TakeDecisions() []PlannerDecision {
	out := p.decisions
	p.decisions = nil
	return out
}
