// Package experiments regenerates every table and figure of the paper's
// evaluation from the reproduction's own machinery: characterization
// campaigns on the three simulated applications (Figs. 3–6, Tables 3 and
// 5), the executable ECC codecs (Table 1), the design-space model
// (Tables 4 and 6), and the tolerable-error analysis (Fig. 8). Each
// generator returns a Report containing rendered text plus structured
// paper-vs-measured comparisons for EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sync"
	"time"

	"hrmsim/internal/apps"
	"hrmsim/internal/apps/graphmine"
	"hrmsim/internal/apps/kvstore"
	"hrmsim/internal/apps/websearch"
	"hrmsim/internal/core"
)

// Scale controls how much work the campaign-backed experiments do.
type Scale struct {
	// Trials is the number of injection trials per campaign cell.
	Trials int
	// Fig5aTrials is the (larger) trial count for the time-to-outcome
	// distribution, which needs many crash/incorrect samples.
	Fig5aTrials int
	// Watchpoints is the address sample size for safe-ratio and
	// recoverability analysis.
	Watchpoints int
	// TargetCI, when positive, runs campaign cells under the adaptive
	// planner (Wilson CI half-width target on the crash probability at
	// level 0.90, Trials as the hard budget) and schedules multi-cell
	// sweeps widest-CI-first through the shared worker pool. 0 keeps
	// fixed-N cells.
	TargetCI float64
	// Seed drives everything.
	Seed int64
	// Parallelism caps concurrent trials (0 = GOMAXPROCS).
	Parallelism int
	// Progress, if non-nil, is forwarded to every campaign the suite
	// runs (see core.CampaignConfig.Progress).
	Progress func(core.ProgressInfo)
}

// Quick returns a scale suitable for tests: small but large enough for
// every qualitative conclusion to be stable under the fixed seed.
func Quick() Scale {
	return Scale{Trials: 60, Fig5aTrials: 400, Watchpoints: 300, Seed: 1}
}

// Default returns the scale used by the CLI and benchmarks.
func Default() Scale {
	return Scale{Trials: 400, Fig5aTrials: 1200, Watchpoints: 1590, Seed: 1}
}

// Report is one regenerated table or figure.
type Report struct {
	// ID is the experiment identifier ("table1", "fig3", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Text is the rendered table/figure.
	Text string
	// Comparisons hold paper-vs-measured rows for EXPERIMENTS.md.
	Comparisons []Comparison
}

// Comparison is one paper-vs-measured data point.
type Comparison struct {
	Metric   string
	Paper    string
	Measured string
	Note     string
}

// Suite lazily builds the three applications (with goldens) once and
// shares them across experiments.
type Suite struct {
	scale Scale

	mu        sync.Mutex
	apps      map[string]*appEntry
	campaigns map[string]*core.CampaignResult
}

// appEntry caches a builder and its golden run.
type appEntry struct {
	builder apps.Builder
	golden  []uint64
}

// NewSuite creates a suite at the given scale.
func NewSuite(scale Scale) (*Suite, error) {
	if scale.Trials <= 0 {
		return nil, fmt.Errorf("experiments: trials must be positive, got %d", scale.Trials)
	}
	if scale.Fig5aTrials <= 0 {
		scale.Fig5aTrials = scale.Trials
	}
	if scale.Watchpoints <= 0 {
		scale.Watchpoints = 300
	}
	return &Suite{scale: scale, apps: make(map[string]*appEntry)}, nil
}

// Scale returns the suite's scale.
func (s *Suite) Scale() Scale { return s.scale }

// wsConfig is the experiment-scale WebSearch configuration.
func (s *Suite) wsConfig() websearch.Config {
	cfg := websearch.DefaultConfig(s.scale.Seed)
	cfg.Docs = 1024
	cfg.Vocab = 512
	cfg.MinTerms = 6
	cfg.MaxTerms = 24
	cfg.Queries = 120
	cfg.CacheSlots = 256
	// Spread the workload over ~20 virtual minutes, comparable to the
	// paper's observation windows (Fig. 5a, the 5-minute flush rule).
	cfg.RequestCost = 10 * time.Second
	return cfg
}

// kvConfig is the experiment-scale kvstore configuration.
func (s *Suite) kvConfig() kvstore.Config {
	cfg := kvstore.DefaultConfig(s.scale.Seed)
	cfg.Keys = 512
	cfg.Ops = 600
	cfg.RequestCost = 2 * time.Second // ~20 virtual minutes per run
	return cfg
}

// gmConfig is the experiment-scale graphmine configuration.
func (s *Suite) gmConfig() graphmine.Config {
	cfg := graphmine.DefaultConfig(s.scale.Seed)
	cfg.Nodes = 512
	cfg.AvgDeg = 6
	cfg.Iterations = 3
	cfg.ChunkNodes = 128
	cfg.TopK = 50
	cfg.RequestCost = 90 * time.Second // ~20 virtual minutes per run
	return cfg
}

// app returns the cached builder+golden for one of "websearch",
// "kvstore", "graphmine".
func (s *Suite) app(name string) (*appEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.apps[name]; ok {
		return e, nil
	}
	var (
		b   apps.Builder
		err error
	)
	switch name {
	case "websearch":
		b, err = websearch.NewBuilder(s.wsConfig())
	case "kvstore":
		b, err = kvstore.NewBuilder(s.kvConfig())
	case "graphmine":
		b, err = graphmine.NewBuilder(s.gmConfig())
	default:
		return nil, fmt.Errorf("experiments: unknown application %q", name)
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: building %s: %w", name, err)
	}
	golden, err := core.GoldenRun(b)
	if err != nil {
		return nil, fmt.Errorf("experiments: golden run for %s: %w", name, err)
	}
	e := &appEntry{builder: b, golden: golden}
	s.apps[name] = e
	return e, nil
}

// AppNames lists the case-study applications in paper order.
func AppNames() []string { return []string{"websearch", "kvstore", "graphmine"} }

// paperAppLabel maps internal names to the paper's workload names.
func paperAppLabel(name string) string {
	switch name {
	case "websearch":
		return "WebSearch"
	case "kvstore":
		return "Memcached"
	case "graphmine":
		return "GraphLab"
	default:
		return name
	}
}

// IDs lists every experiment in paper order.
func IDs() []string {
	return []string{
		"table1", "table3", "table4", "fig3", "fig4", "fig5a", "fig5b",
		"fig6", "table5", "table6", "fig8", "fig9",
	}
}

// Run dispatches one experiment by ID.
func (s *Suite) Run(id string) (*Report, error) {
	switch id {
	case "table1":
		return s.Table1()
	case "table3":
		return s.Table3()
	case "table4":
		return s.Table4()
	case "fig3":
		return s.Figure3()
	case "fig4":
		return s.Figure4()
	case "fig5a":
		return s.Figure5a()
	case "fig5b":
		return s.Figure5b()
	case "fig6":
		return s.Figure6()
	case "table5":
		return s.Table5()
	case "table6":
		return s.Table6()
	case "fig8":
		return s.Figure8()
	case "fig9":
		return s.Figure9()
	default:
		return s.runExtension(id)
	}
}
