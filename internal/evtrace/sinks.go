package evtrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// StreamHeader is the first line of every JSONL trace stream.
type StreamHeader struct {
	SchemaVersion int    `json:"schema_version"`
	Stream        string `json:"stream"`
}

// JSONLWriter streams events as JSON Lines: one header line, then one
// line per event, trials in ascending order. Two runs of the same
// deterministic campaign produce byte-identical streams modulo the
// "wall_"-prefixed fields.
type JSONLWriter struct {
	bw  *bufio.Writer
	w   io.Writer
	err error
}

// NewJSONLWriter creates the sink and writes the stream header. Close
// flushes, and also closes w when it implements io.Closer.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	jw := &JSONLWriter{bw: bufio.NewWriter(w), w: w}
	b, _ := json.Marshal(StreamHeader{SchemaVersion: SchemaVersion, Stream: Stream})
	jw.write(b)
	return jw
}

// write emits one line, keeping the first error sticky.
func (jw *JSONLWriter) write(line []byte) {
	if jw.err != nil {
		return
	}
	if _, err := jw.bw.Write(line); err != nil {
		jw.err = err
		return
	}
	jw.err = jw.bw.WriteByte('\n')
}

// WriteTrial implements Sink.
func (jw *JSONLWriter) WriteTrial(trial int, events []Event) error {
	for i := range events {
		b, err := json.Marshal(&events[i])
		if err != nil {
			return err
		}
		jw.write(b)
	}
	return jw.err
}

// Close implements Sink.
func (jw *JSONLWriter) Close() error {
	if err := jw.bw.Flush(); err != nil && jw.err == nil {
		jw.err = err
	}
	if c, ok := jw.w.(io.Closer); ok {
		if err := c.Close(); err != nil && jw.err == nil {
			jw.err = err
		}
	}
	return jw.err
}

// ReadJSONL parses a JSONL trace stream back into events. It validates
// the header (stream identity and schema version at most the one this
// package writes) and preserves event order.
func ReadJSONL(r io.Reader) (StreamHeader, []Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return StreamHeader{}, nil, err
		}
		return StreamHeader{}, nil, fmt.Errorf("evtrace: empty trace stream")
	}
	var hdr StreamHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return StreamHeader{}, nil, fmt.Errorf("evtrace: bad stream header: %w", err)
	}
	if hdr.Stream != Stream {
		return hdr, nil, fmt.Errorf("evtrace: not an event trace (stream %q)", hdr.Stream)
	}
	if hdr.SchemaVersion > SchemaVersion {
		return hdr, nil, fmt.Errorf("evtrace: stream schema v%d is newer than supported v%d",
			hdr.SchemaVersion, SchemaVersion)
	}
	var events []Event
	for line := 2; sc.Scan(); line++ {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return hdr, nil, fmt.Errorf("evtrace: line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	return hdr, events, sc.Err()
}

// Dump is one flight-recorder capture: the tail of a trial that ended in
// crash or incorrect-response.
type Dump struct {
	// Trial is the trial ID.
	Trial int `json:"trial"`
	// Outcome is the Fig. 1 classification that triggered the dump.
	Outcome string `json:"outcome"`
	// Dropped is the trial's capped-event count (from its trial_end).
	Dropped int64 `json:"dropped,omitempty"`
	// Truncated counts events recorded for the trial but outside the
	// recorder's last-N window.
	Truncated int `json:"truncated,omitempty"`
	// Events are the last recorded events, in emission order.
	Events []Event `json:"events"`
}

// dumpOutcomes are the Fig. 1 outcome strings (core.Outcome.String) that
// trigger a flight-recorder dump: the two externally visible failures.
var dumpOutcomes = map[string]bool{
	"crash":              true,
	"incorrect-response": true,
}

// Recorder is the flight-recorder sink: for every trial that ends in
// crash or incorrect-response it retains the last LastN recorded events,
// up to MaxDumps trials (further qualifying trials are counted, not
// stored, so pathological campaigns cannot hoard memory).
type Recorder struct {
	lastN    int
	maxDumps int
	dumps    []Dump
	skipped  int
}

// Recorder defaults.
const (
	DefaultRecorderLastN = 64
	DefaultRecorderDumps = 32
)

// NewRecorder creates a flight recorder keeping the last lastN events of
// up to maxDumps qualifying trials (non-positive arguments select the
// defaults).
func NewRecorder(lastN, maxDumps int) *Recorder {
	if lastN <= 0 {
		lastN = DefaultRecorderLastN
	}
	if maxDumps <= 0 {
		maxDumps = DefaultRecorderDumps
	}
	return &Recorder{lastN: lastN, maxDumps: maxDumps}
}

// WriteTrial implements Sink.
func (r *Recorder) WriteTrial(trial int, events []Event) error {
	outcome := ""
	var dropped int64
	for i := range events {
		switch events[i].Kind {
		case KindOutcome:
			outcome = events[i].Outcome
		case KindTrialEnd:
			dropped = events[i].Dropped
		}
	}
	if !dumpOutcomes[outcome] {
		return nil
	}
	if len(r.dumps) >= r.maxDumps {
		r.skipped++
		return nil
	}
	tail := events
	truncated := 0
	if len(tail) > r.lastN {
		truncated = len(tail) - r.lastN
		tail = tail[truncated:]
	}
	r.dumps = append(r.dumps, Dump{
		Trial:     trial,
		Outcome:   outcome,
		Dropped:   dropped,
		Truncated: truncated,
		Events:    append([]Event(nil), tail...),
	})
	return nil
}

// Close implements Sink.
func (r *Recorder) Close() error { return nil }

// Dumps returns the retained dumps in trial order.
func (r *Recorder) Dumps() []Dump { return r.dumps }

// Skipped returns how many qualifying trials arrived after the dump
// budget was exhausted.
func (r *Recorder) Skipped() int { return r.skipped }

// chromeEvent is one Chrome trace-event object. The exporter emits only
// fields the format defines: ph "M" metadata records, ph "X" complete
// slices, and ph "i" instants (ts/dur in microseconds).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Cname string         `json:"cname,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromePid is the single synthetic process every campaign track lives
// under.
const chromePid = 1

// ChromeWriter exports a campaign as Chrome trace-event JSON (the array
// form), loadable in ui.perfetto.dev or chrome://tracing: one thread
// track per trial on the virtual-time axis, an outcome-colored slice
// spanning injection to trial end, and instant markers for injection,
// faulty-word accesses, ECC activity, and crashes.
type ChromeWriter struct {
	w      io.Writer
	events []chromeEvent
}

// NewChromeWriter creates the exporter. The JSON document is written on
// Close (the format is one array, so it cannot stream); Close also
// closes w when it implements io.Closer.
func NewChromeWriter(w io.Writer) *ChromeWriter {
	cw := &ChromeWriter{w: w}
	cw.events = append(cw.events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: chromePid, Tid: 0,
		Args: map[string]any{"name": "hrmsim campaign"},
	})
	return cw
}

// chromeColor maps a Fig. 1 outcome onto a Chrome trace cname.
func chromeColor(outcome string) string {
	switch outcome {
	case "crash":
		return "terrible"
	case "incorrect-response":
		return "bad"
	case "masked-by-overwrite", "masked-by-logic":
		return "good"
	default: // masked-latent and anything unknown
		return "grey"
	}
}

// usec converts virtual nanoseconds to trace microseconds.
func usec(vtNanos int64) float64 { return float64(vtNanos) / 1e3 }

// WriteTrial implements Sink.
func (cw *ChromeWriter) WriteTrial(trial int, events []Event) error {
	var start, end int64
	outcome, region := "", ""
	haveStart := false
	for i := range events {
		ev := &events[i]
		if ev.VTNanos > end {
			end = ev.VTNanos
		}
		switch ev.Kind {
		case KindTrialStart:
			start, haveStart = ev.VTNanos, true
		case KindOutcome:
			outcome = ev.Outcome
			if region == "" {
				region = ev.Region
			}
		case KindInject:
			if region == "" {
				region = ev.Region
			}
		}
	}
	if !haveStart && len(events) > 0 {
		start = events[0].VTNanos
	}
	label := fmt.Sprintf("trial %d", trial)
	if outcome != "" {
		label += " [" + outcome + "]"
	}
	cw.events = append(cw.events, chromeEvent{
		Name: "thread_name", Ph: "M", Pid: chromePid, Tid: trial,
		Args: map[string]any{"name": label},
	})
	name := outcome
	if name == "" {
		name = "trial"
	}
	cw.events = append(cw.events, chromeEvent{
		Name: name, Cat: "trial", Ph: "X",
		TS: usec(start), Dur: usec(end - start),
		Pid: chromePid, Tid: trial, Cname: chromeColor(outcome),
		Args: map[string]any{"outcome": outcome, "region": region, "trial": trial},
	})
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case KindTrialStart, KindTrialEnd, KindOutcome:
			continue
		}
		args := map[string]any{}
		if ev.Addr != 0 {
			args["addr"] = fmt.Sprintf("0x%x", ev.Addr)
		}
		if ev.Access != "" {
			args["access"] = ev.Access
		}
		if ev.Error != "" {
			args["error"] = ev.Error
		}
		if ev.Detail != "" {
			args["detail"] = ev.Detail
		}
		if ev.Region != "" {
			args["region"] = ev.Region
		}
		name := string(ev.Kind)
		if ev.Kind == KindAccessFaulty {
			name = "access_faulty:" + ev.Access
		}
		cw.events = append(cw.events, chromeEvent{
			Name: name, Cat: string(ev.Kind), Ph: "i",
			TS: usec(ev.VTNanos), Pid: chromePid, Tid: trial,
			Scope: "t", Args: args,
		})
	}
	return nil
}

// Close implements Sink: it writes the whole trace-event array.
func (cw *ChromeWriter) Close() error {
	b, err := json.MarshalIndent(cw.events, "", " ")
	if err == nil {
		_, err = cw.w.Write(append(b, '\n'))
	}
	if c, ok := cw.w.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// FormatEvent renders one event as a human-readable timeline line
// relative to a trial-local origin (usually the trial_start virtual
// time), used by `hrmsim traceview`.
func FormatEvent(ev Event, originNanos int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "+%9.3fs  %-17s", float64(ev.VTNanos-originNanos)/1e9, ev.Kind)
	if ev.Addr != 0 {
		fmt.Fprintf(&b, " addr=0x%x", ev.Addr)
	}
	if ev.Region != "" {
		fmt.Fprintf(&b, " region=%s", ev.Region)
	}
	if ev.Access != "" {
		fmt.Fprintf(&b, " %s(%dB)", ev.Access, ev.Len)
	}
	if ev.Error != "" {
		fmt.Fprintf(&b, " error=%q bits=%v", ev.Error, ev.Bits)
	}
	if ev.Outcome != "" {
		fmt.Fprintf(&b, " outcome=%s", ev.Outcome)
	}
	if ev.Detail != "" {
		fmt.Fprintf(&b, " detail=%q", ev.Detail)
	}
	if ev.Dropped > 0 {
		fmt.Fprintf(&b, " dropped=%d", ev.Dropped)
	}
	return b.String()
}
