#!/bin/sh
# Regression ratchet: compare the current campaign throughput (the
# trials/s metric BenchmarkCampaignLifecycle reports) against the
# latest committed scripts/bench.sh capture, and fail when it drops
# more than THRESHOLD. When the baseline also carries the adaptive
# planner's trials-to-target-ci metric (BenchmarkAdaptiveCampaign), a
# second, lower-is-better ratchet checks that reaching the target CI
# still costs no more trials than the committed capture — that metric
# is deterministic (plan boundaries depend only on seeded trial
# outcomes), so it holds exactly across machines. When the baseline
# carries the secded_vs_noecc_ratio metric (BenchmarkSECDEDGap), a
# third gate both ratchets the ratio and caps it at GAP_MAX (default
# 1.15): SEC-DED campaigns must stay within 15% of no-ECC. The ratio
# times both sides in one run, so it transfers across machines far
# better than absolute trials/s — but it still swings ~±10% with the
# host's memory-subsystem state, so CI enforces the 1.15 target in the
# advisory step and blocks only at GAP_MAX=1.35 (a reopened gap on
# the order of the old per-page-taint engine's 1.4×).
#
#   scripts/bench_compare.sh                   # 10% ratchet vs latest BENCH_*.json
#   THRESHOLD=0.5 scripts/bench_compare.sh     # relaxed gate (cross-machine CI)
#   BASELINE=BENCH_2026-08-06.json scripts/bench_compare.sh
#   CAPTURE_OUT=/tmp/cur.json scripts/bench_compare.sh  # keep the capture
#   CURRENT=/tmp/cur.json scripts/bench_compare.sh      # reuse a capture
#
# The baseline must be a real `go test -json` event stream: hand-written
# summary documents (like BENCH_2026-08-08-sharding.json) carry no
# benchmark events and are skipped when auto-picking, and rejected by
# benchgate when forced. Absolute trials/s is machine-dependent, so CI
# runs this twice off one capture: an advisory 10% step and a blocking
# relaxed-threshold step (see .github/workflows/ci.yml).
set -eu
cd "$(dirname "$0")/.."

THRESHOLD="${THRESHOLD:-0.10}"
GAP_MAX="${GAP_MAX:-1.15}"

if [ -z "${BASELINE:-}" ]; then
    # Latest committed capture that actually holds trials/s benchmark
    # events, newest first by the date-stamped file name.
    for f in $(ls -r BENCH_*.json 2>/dev/null); do
        if grep -q '"Action":"output"' "$f" && grep -q 'trials/s' "$f"; then
            BASELINE="$f"
            break
        fi
    done
fi
if [ -z "${BASELINE:-}" ]; then
    echo "bench_compare: no committed BENCH_*.json capture with trials/s events found" >&2
    exit 1
fi

if [ -z "${CURRENT:-}" ]; then
    CURRENT="${CAPTURE_OUT:-$(mktemp /tmp/bench_current.XXXXXX.json)}"
    echo "bench_compare: capturing current throughput -> $CURRENT" >&2
    go test -json -run '^$' \
        -bench 'BenchmarkCampaignLifecycle|BenchmarkAdaptiveCampaign|BenchmarkSECDEDGap' \
        -benchtime 1x . >"$CURRENT"
else
    echo "bench_compare: reusing capture $CURRENT" >&2
fi

echo "bench_compare: throughput ratchet vs $BASELINE (threshold $THRESHOLD)" >&2
go run ./cmd/benchgate -baseline "$BASELINE" -current "$CURRENT" -threshold "$THRESHOLD"

# Adaptive-efficiency ratchet: only when the baseline already captures
# the metric (older baselines predate the adaptive planner).
if grep -q 'trials-to-target-ci' "$BASELINE"; then
    echo "bench_compare: adaptive trials-to-target-ci ratchet vs $BASELINE" >&2
    go run ./cmd/benchgate -baseline "$BASELINE" -current "$CURRENT" \
        -threshold "$THRESHOLD" -bench BenchmarkAdaptiveCampaign \
        -metric trials-to-target-ci -direction lower
else
    echo "bench_compare: baseline has no trials-to-target-ci events; skipping the adaptive ratchet" >&2
fi

# SEC-DED gap gate: ratchet plus absolute cap, only when the baseline
# already captures the ratio (older baselines predate BenchmarkSECDEDGap).
if grep -q 'secded_vs_noecc_ratio' "$BASELINE"; then
    echo "bench_compare: SEC-DED gap gate vs $BASELINE (cap $GAP_MAX)" >&2
    go run ./cmd/benchgate -baseline "$BASELINE" -current "$CURRENT" \
        -threshold "$THRESHOLD" -bench BenchmarkSECDEDGap \
        -metric secded_vs_noecc_ratio -direction lower -max "$GAP_MAX"
else
    echo "bench_compare: baseline has no secded_vs_noecc_ratio events; skipping the gap gate" >&2
fi
