package simmem

import (
	"bytes"
	"testing"
)

func pageTainted(r *Region, pi int) bool { return r.pages[pi].anyTaint }

func TestTaintTransitions(t *testing.T) {
	as, r := newProtectedAS(t, replicaCodec{}, nil)
	if got := as.TaintedPages(); got != 0 {
		t.Fatalf("fresh space has %d tainted pages, want 0", got)
	}

	// Every corruption channel taints its page.
	if err := as.FlipBit(r.Base(), 3); err != nil {
		t.Fatalf("FlipBit: %v", err)
	}
	if !pageTainted(r, 0) {
		t.Error("FlipBit did not taint the page")
	}
	if err := as.FlipCheckBit(r.Base()+256, 0); err != nil {
		t.Fatalf("FlipCheckBit: %v", err)
	}
	if !pageTainted(r, 1) {
		t.Error("FlipCheckBit did not taint the page")
	}
	if err := as.StickBit(r.Base()+512, 2, 1); err != nil {
		t.Fatalf("StickBit: %v", err)
	}
	if !pageTainted(r, 2) {
		t.Error("StickBit did not taint the page")
	}
	if got := as.TaintedPages(); got != 3 {
		t.Fatalf("TaintedPages = %d, want 3", got)
	}

	// An ordinary store re-encodes the touched words but cannot prove the
	// rest of the page clean: taint must survive.
	if err := as.Store(r.Base()+64, make([]byte, 16)); err != nil {
		t.Fatalf("Store: %v", err)
	}
	if !pageTainted(r, 0) {
		t.Error("Store cleared taint without proving the page clean")
	}

	// A write-back scrub repairs the flipped bits and re-admits page 0.
	if _, _, err := r.ScrubPage(0, true); err != nil {
		t.Fatalf("ScrubPage: %v", err)
	}
	if pageTainted(r, 0) {
		t.Error("write-back scrub left a repaired page tainted")
	}
	// Scrubbing without write-back corrects on the fly but leaves the
	// erroneous stored bytes: the page must stay tainted.
	if err := as.FlipBit(r.Base(), 3); err != nil {
		t.Fatalf("FlipBit: %v", err)
	}
	if c, _, err := r.ScrubPage(0, false); err != nil || c != 1 {
		t.Fatalf("ScrubPage(no write-back) = %d corrected, err %v; want 1, nil", c, err)
	}
	if !pageTainted(r, 0) {
		t.Error("scrub without write-back cleared taint despite stored errors")
	}

	// A scrub cannot clear a stuck-at page; frame replacement can.
	if _, _, err := r.ScrubPage(2, true); err != nil {
		t.Fatalf("ScrubPage: %v", err)
	}
	if !pageTainted(r, 2) {
		t.Error("scrub cleared taint on a page with stuck-at state")
	}
	if err := r.ReplaceFrame(2); err != nil {
		t.Fatalf("ReplaceFrame: %v", err)
	}
	if pageTainted(r, 2) {
		t.Error("ReplaceFrame left the fresh frame tainted")
	}

	// RestoreWord repairs the only erroneous word on page 1 and verifies
	// the whole page back to clean.
	if err := r.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	if err := r.RestoreWord(r.Base() + 256); err != nil {
		t.Fatalf("RestoreWord: %v", err)
	}
	if pageTainted(r, 1) {
		t.Error("RestoreWord did not clear taint on a verifiably clean page")
	}

	// RestoreWord on a page with a second, unrepaired error must not
	// clear taint.
	if err := as.FlipBit(r.Base()+256, 1); err != nil {
		t.Fatalf("FlipBit: %v", err)
	}
	if err := as.FlipBit(r.Base()+256+128, 1); err != nil {
		t.Fatalf("FlipBit: %v", err)
	}
	if err := r.RestoreWord(r.Base() + 256); err != nil {
		t.Fatalf("RestoreWord: %v", err)
	}
	if !pageTainted(r, 1) {
		t.Error("RestoreWord cleared taint with an unrepaired error elsewhere on the page")
	}
}

func TestTaintSnapshotRestore(t *testing.T) {
	as, r := newProtectedAS(t, replicaCodec{}, nil)
	snap := as.Snapshot()

	// Taint after the capture; restore must roll the flag back.
	if err := as.FlipBit(r.Base(), 0); err != nil {
		t.Fatalf("FlipBit: %v", err)
	}
	if as.TaintedPages() != 1 {
		t.Fatalf("TaintedPages = %d, want 1", as.TaintedPages())
	}
	if _, err := snap.Restore(); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if as.TaintedPages() != 0 {
		t.Errorf("restore left %d tainted pages, want 0", as.TaintedPages())
	}

	// Capture a tainted state, clean it, and restore: the taint (and the
	// erroneous byte under it) must come back.
	if err := as.FlipBit(r.Base(), 0); err != nil {
		t.Fatalf("FlipBit: %v", err)
	}
	snap = as.Snapshot()
	if _, _, err := r.ScrubPage(0, true); err != nil {
		t.Fatalf("ScrubPage: %v", err)
	}
	if as.TaintedPages() != 0 {
		t.Fatalf("scrub left %d tainted pages, want 0", as.TaintedPages())
	}
	if _, err := snap.Restore(); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if as.TaintedPages() != 1 {
		t.Errorf("restore rebuilt %d tainted pages, want 1", as.TaintedPages())
	}
	var b [1]byte
	if err := as.ReadRaw(r.Base(), b[:]); err != nil {
		t.Fatalf("ReadRaw: %v", err)
	}
	if b[0] != 1 {
		t.Errorf("restored stored byte = %#x, want the re-flipped 0x01", b[0])
	}
}

func TestFastPathCounters(t *testing.T) {
	as, r := newProtectedAS(t, replicaCodec{}, nil)
	buf := make([]byte, 32)
	if err := as.Load(r.Base(), buf); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if as.FastPathLoads() != 1 {
		t.Fatalf("FastPathLoads = %d after clean load, want 1", as.FastPathLoads())
	}

	// A tainted page forces the slow path; the counter must not move.
	if err := as.FlipBit(r.Base(), 0); err != nil {
		t.Fatalf("FlipBit: %v", err)
	}
	if err := as.Load(r.Base(), buf); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if as.FastPathLoads() != 1 {
		t.Fatalf("FastPathLoads = %d after tainted load, want 1", as.FastPathLoads())
	}

	// Re-admission via write-back scrub restores the fast path.
	if _, _, err := r.ScrubPage(0, true); err != nil {
		t.Fatalf("ScrubPage: %v", err)
	}
	if err := as.Load(r.Base(), buf); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if as.FastPathLoads() != 2 {
		t.Fatalf("FastPathLoads = %d after scrubbed load, want 2", as.FastPathLoads())
	}

	// SetFastPath(false) drives the slow path even on clean pages.
	if prev := as.SetFastPath(false); !prev {
		t.Error("SetFastPath returned prev=false on an enabled space")
	}
	if err := as.Load(r.Base(), buf); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if as.FastPathLoads() != 2 {
		t.Fatalf("FastPathLoads = %d with fast path off, want 2", as.FastPathLoads())
	}
	as.SetFastPath(true)
}

// TestFastSlowLoadIdentical pins the bit-identity of the two paths on the
// same space: a clean load, a load over a stuck-at page, and a load over
// a corrected word must return the same bytes either way.
func TestFastSlowLoadIdentical(t *testing.T) {
	as, r := newProtectedAS(t, replicaCodec{}, nil)
	want := make([]byte, 64)
	for i := range want {
		want[i] = byte(i * 7)
	}
	if err := as.Store(r.Base()+32, want); err != nil {
		t.Fatalf("Store: %v", err)
	}
	got := make([]byte, 64)
	for _, fast := range []bool{true, false} {
		as.SetFastPath(fast)
		for i := range got {
			got[i] = 0
		}
		if err := as.Load(r.Base()+32, got); err != nil {
			t.Fatalf("Load(fast=%v): %v", fast, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("Load(fast=%v) = %x, want %x", fast, got, want)
		}
	}
}

func TestFindRegionCacheCoherence(t *testing.T) {
	as := newTestAS(t)
	regions := as.Regions()
	// Alternate across regions, hitting first/last bytes, so every lookup
	// either hits or replaces the one-entry cache; then probe unmapped
	// addresses (gaps, below the first base, past the end).
	for pass := 0; pass < 3; pass++ {
		for _, r := range regions {
			for _, addr := range []Addr{r.Base(), r.Base() + Addr(r.Size()) - 1} {
				if got := as.findRegion(addr); got != r {
					t.Fatalf("findRegion(%#x) = %v, want region %q", addr, got, r.Name())
				}
			}
			if got := as.findRegion(r.Base() + Addr(r.Size())); got != nil && !got.Contains(r.Base()+Addr(r.Size())) {
				t.Fatalf("findRegion just past %q returned a non-containing region", r.Name())
			}
		}
		if got := as.findRegion(0); got != nil {
			t.Fatalf("findRegion(0) = %q, want nil", got.Name())
		}
		last := regions[len(regions)-1]
		if got := as.findRegion(last.Base() + Addr(last.Size()) + regionGap); got != nil {
			t.Fatalf("findRegion past the last region = %q, want nil", got.Name())
		}
	}
	// Mapping a new region after lookups must be visible immediately
	// (append-only layout keeps the cached pointer valid, not the search).
	nr, err := as.AddRegion(RegionSpec{Name: "late", Kind: RegionOther, Size: 512})
	if err != nil {
		t.Fatalf("AddRegion: %v", err)
	}
	if got := as.findRegion(nr.Base()); got != nr {
		t.Fatalf("findRegion missed a freshly mapped region")
	}
	if got := as.findRegion(regions[0].Base()); got != regions[0] {
		t.Fatalf("findRegion lost the first region after mapping a new one")
	}
}

// TestAccessPathAllocations pins the scratch-buffer hoisting: steady-state
// loads and stores allocate nothing on either path.
func TestAccessPathAllocations(t *testing.T) {
	as, r := newProtectedAS(t, replicaCodec{}, nil)
	buf := make([]byte, 24)
	// Unaligned on purpose so stores exercise the partial-word RMW.
	addr := r.Base() + 3

	for _, fast := range []bool{true, false} {
		as.SetFastPath(fast)
		if n := testing.AllocsPerRun(100, func() {
			if err := as.Load(addr, buf); err != nil {
				t.Fatalf("Load: %v", err)
			}
		}); n != 0 {
			t.Errorf("Load(fast=%v) allocates %v per op, want 0", fast, n)
		}
		if n := testing.AllocsPerRun(100, func() {
			if err := as.Store(addr, buf); err != nil {
				t.Fatalf("Store: %v", err)
			}
		}); n != 0 {
			t.Errorf("Store(fast=%v) allocates %v per op, want 0", fast, n)
		}
	}
	as.SetFastPath(true)
	if n := testing.AllocsPerRun(100, func() {
		if err := as.WriteRaw(addr, buf); err != nil {
			t.Fatalf("WriteRaw: %v", err)
		}
	}); n != 0 {
		t.Errorf("WriteRaw allocates %v per op, want 0", n)
	}
}

// TestScratchReentrancy drives an MC handler that re-enters the memory
// path (as Par+R recovery does) while the faulting load holds the scratch
// buffers: the repair must not clobber the outer frame's word.
func TestScratchReentrancy(t *testing.T) {
	as, err := New(Config{PageSize: 256})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r, err := as.AddRegion(RegionSpec{
		Name: "prot", Kind: RegionHeap, Size: 1024, Backed: true, Codec: parityOnlyCodec{},
	})
	if err != nil {
		t.Fatalf("AddRegion: %v", err)
	}
	want := make([]byte, 16)
	for i := range want {
		want[i] = byte(0x40 + i)
	}
	if err := as.Store(r.Base(), want); err != nil {
		t.Fatalf("Store: %v", err)
	}
	if err := r.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	// Corrupt one word; parity detects but cannot correct, so the load
	// raises a machine check and the handler restores from backing —
	// which itself walks WriteRaw through the scratch-acquire path.
	if err := as.FlipBit(r.Base()+8, 5); err != nil {
		t.Fatalf("FlipBit: %v", err)
	}
	r.SetMCHandler(MCHandlerFunc(func(_ *AddressSpace, ev MCEvent) MCAction {
		if err := ev.Region.RestoreWord(ev.Addr); err != nil {
			t.Fatalf("RestoreWord in handler: %v", err)
		}
		return MCRecovered
	}))
	got := make([]byte, 16)
	if err := as.Load(r.Base(), got); err != nil {
		t.Fatalf("Load with recovering handler: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("recovered load = %x, want %x", got, want)
	}
	if as.TaintedPages() != 0 {
		t.Errorf("page still tainted after full-word restore, want clean")
	}
	c := as.Counters()
	if c.Uncorrectable != 1 || c.Recovered != 1 {
		t.Errorf("counters = %+v, want 1 uncorrectable / 1 recovered", c)
	}
}

// TestWordTaintBitmap pins the per-codeword bitmap mechanics: set and
// clear round-trip exactly, the page summary bit tracks the bitmap, and
// page-wide operations touch every word.
func TestWordTaintBitmap(t *testing.T) {
	as, r := newProtectedAS(t, replicaCodec{}, nil)
	p := r.pages[0]
	if p.anyTaint {
		t.Fatal("fresh page has its summary bit set")
	}
	r.taintWord(0, 3)
	if !p.wordTainted(3) || p.wordTainted(2) || p.wordTainted(4) {
		t.Error("taintWord(3) did not set exactly word 3")
	}
	if !p.anyTaint {
		t.Error("summary bit not raised by taintWord")
	}
	lastW := r.wordsPerPage - 1
	r.taintWord(0, lastW)
	if pg, w := as.TaintStats(); pg != 1 || w != 2 {
		t.Fatalf("TaintStats = %d pages / %d words, want 1/2", pg, w)
	}
	// Clearing one word keeps the summary up while the other holds.
	r.clearWordTaint(0, 3)
	if p.wordTainted(3) {
		t.Error("clearWordTaint(3) left word 3 tainted")
	}
	if !p.anyTaint {
		t.Error("summary bit dropped with a word still tainted")
	}
	r.clearWordTaint(0, lastW)
	if p.anyTaint {
		t.Error("summary bit held after the last word was cleared")
	}
	// Page-wide set and clear.
	r.taintPage(1)
	p1 := r.pages[1]
	for wi := 0; wi < r.wordsPerPage; wi++ {
		if !p1.wordTainted(wi) {
			t.Fatalf("taintPage left word %d clean", wi)
		}
	}
	r.clearPageTaint(1)
	if p1.anyTaint {
		t.Error("clearPageTaint left the summary bit set")
	}
	if pg, w := as.TaintStats(); pg != 0 || w != 0 {
		t.Errorf("TaintStats after full clear = %d/%d, want 0/0", pg, w)
	}
}

// TestVerifyWordClean pins the bitmap's ground-truth audit: a corrupted
// codeword fails verification, its neighbors pass, stuck-at state blocks
// verification even when the stored bytes decode clean, and a write-back
// scrub restores verifiability.
func TestVerifyWordClean(t *testing.T) {
	as, r := newProtectedAS(t, replicaCodec{}, nil)
	g := r.granule
	const wi = 2
	if !r.verifyWordClean(0, wi) {
		t.Fatal("fresh word does not verify clean")
	}
	if err := as.FlipBit(r.Base()+Addr(wi*g), 0); err != nil {
		t.Fatalf("FlipBit: %v", err)
	}
	if r.verifyWordClean(0, wi) {
		t.Error("corrupted word verified clean")
	}
	if !r.verifyWordClean(0, wi+1) || !r.verifyWordClean(0, wi-1) {
		t.Error("corruption in word 2 broke verification of its neighbors")
	}
	// A bit stuck at its current stored value changes no bytes — the word
	// still decodes clean — but the invariant requires no stuck-at state.
	if err := as.StickBit(r.Base()+Addr(5*g), 1, 0); err != nil {
		t.Fatalf("StickBit: %v", err)
	}
	if r.verifyWordClean(0, 5) {
		t.Error("word with stuck-at state verified clean")
	}
	if _, _, err := r.ScrubPage(0, true); err != nil {
		t.Fatalf("ScrubPage: %v", err)
	}
	if !r.verifyWordClean(0, wi) {
		t.Error("write-back scrub did not restore verifiability")
	}
}

// TestWordTaintSnapshotRestore pins the word-granular round-trip through
// Snapshot/Restore: the restored bitmap reproduces the captured state
// bit-for-bit, not just the page summary.
func TestWordTaintSnapshotRestore(t *testing.T) {
	as, r := newProtectedAS(t, replicaCodec{}, nil)
	g := r.granule
	const wi = 3
	if err := as.FlipBit(r.Base()+Addr(wi*g), 1); err != nil {
		t.Fatalf("FlipBit: %v", err)
	}
	if pg, w := as.TaintStats(); pg != 1 || w != 1 {
		t.Fatalf("TaintStats = %d/%d after one flip, want 1/1", pg, w)
	}
	snap := as.Snapshot()
	if _, _, err := r.ScrubPage(0, true); err != nil {
		t.Fatalf("ScrubPage: %v", err)
	}
	if pg, w := as.TaintStats(); pg != 0 || w != 0 {
		t.Fatalf("TaintStats = %d/%d after scrub, want 0/0", pg, w)
	}
	if _, err := snap.Restore(); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if pg, w := as.TaintStats(); pg != 1 || w != 1 {
		t.Fatalf("TaintStats = %d/%d after restore, want 1/1", pg, w)
	}
	p := r.pages[0]
	for k := 0; k < r.wordsPerPage; k++ {
		if p.wordTainted(k) != (k == wi) {
			t.Errorf("restored bitmap: word %d tainted=%v, want %v", k, p.wordTainted(k), k == wi)
		}
	}
}

// TestAccessorSpanZeroAlloc pins the span-access API at zero allocations
// per op in steady state — on clean pages, on a partially-tainted page
// (one word carries harmless stuck-at state, forcing the per-word walk),
// and for the typed helpers.
func TestAccessorSpanZeroAlloc(t *testing.T) {
	as, r := newProtectedAS(t, replicaCodec{}, nil)
	acc := as.NewAccessor()
	base := r.Base()
	buf := make([]byte, 48)
	// Stick byte 0's bit 0 at its current value: the word is tainted (the
	// bitmap cannot prove it clean) but senses and decodes unchanged, so
	// slow-path walks stay error- and event-free.
	if err := as.StickBit(base, 0, 0); err != nil {
		t.Fatalf("StickBit: %v", err)
	}
	pin := func(name string, fn func() error) {
		t.Helper()
		if n := testing.AllocsPerRun(200, func() {
			if err := fn(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}); n != 0 {
			t.Errorf("%s allocates %v per op, want 0", name, n)
		}
	}
	pin("Load(span across tainted word)", func() error { return acc.Load(base, buf) })
	pin("Store(span across tainted word)", func() error { return acc.Store(base+1, buf[:23]) })
	pin("Load(clean page)", func() error { return acc.Load(base+512, buf) })
	pin("Store(clean page)", func() error { return acc.Store(base+512, buf) })
	pin("LoadU64", func() error { _, err := acc.LoadU64(base + 256); return err })
	pin("StoreU64", func() error { return acc.StoreU64(base+256, 0xfeedbeef) })
	pin("LoadF64", func() error { _, err := acc.LoadF64(base + 264); return err })
	pin("LoadU32", func() error { _, err := acc.LoadU32(base + 272); return err })
	pin("LoadU8", func() error { _, err := acc.LoadU8(base + 276); return err })
}
