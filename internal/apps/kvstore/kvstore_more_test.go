package kvstore

import (
	"bytes"
	"testing"

	"hrmsim/internal/simmem"
	"hrmsim/internal/trace"
)

func TestSetUpdatesAndInserts(t *testing.T) {
	app := build(t, smallConfig(20))
	// Update an existing key.
	if err := app.Set(3, 9); err != nil {
		t.Fatal(err)
	}
	version, val, err := app.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if version != 9 {
		t.Errorf("version = %d, want 9", version)
	}
	if !bytes.Equal(val, trace.ValueFor(3, 9, app.cfg.ValueSize)) {
		t.Error("value mismatch after Set")
	}
	// Insert a brand-new key beyond the pre-populated range.
	newKey := uint64(app.cfg.Keys + 5)
	if err := app.Set(newKey, 1); err != nil {
		t.Fatal(err)
	}
	version, val, err = app.Get(newKey)
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 || !bytes.Equal(val, trace.ValueFor(newKey, 1, app.cfg.ValueSize)) {
		t.Error("inserted key wrong")
	}
}

func TestCorruptedKeyFieldMakesLookupMiss(t *testing.T) {
	app := build(t, smallConfig(21))
	as := app.Space()
	// Find key 1's entry and corrupt its key field: the GET for key 1
	// walks past it and reports a miss (incorrect response, no crash).
	slot := app.buckets + simmem.Addr(hashKey(1, app.cfg.Buckets)*8)
	cur, err := as.LoadU64(slot)
	if err != nil {
		t.Fatal(err)
	}
	for cur != 0 {
		k, err := as.LoadU64(simmem.Addr(cur))
		if err != nil {
			t.Fatal(err)
		}
		if k == 1 {
			if err := as.FlipBit(simmem.Addr(cur)+5, 6); err != nil {
				t.Fatal(err)
			}
			break
		}
		cur, err = as.LoadU64(simmem.Addr(cur) + 16)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := app.Get(1); err == nil {
		t.Error("lookup hit despite corrupted key field")
	}
}

func TestCorruptedValueLengthTripsBudget(t *testing.T) {
	app := build(t, smallConfig(22))
	as := app.Space()
	slot := app.buckets + simmem.Addr(hashKey(2, app.cfg.Buckets)*8)
	cur, err := as.LoadU64(slot)
	if err != nil {
		t.Fatal(err)
	}
	for cur != 0 {
		k, err := as.LoadU64(simmem.Addr(cur))
		if err != nil {
			t.Fatal(err)
		}
		if k == 2 {
			// Blow up the vlen field's high bits.
			if err := as.FlipBit(simmem.Addr(cur)+15, 7); err != nil {
				t.Fatal(err)
			}
			break
		}
		cur, err = as.LoadU64(simmem.Addr(cur) + 16)
		if err != nil {
			t.Fatal(err)
		}
	}
	_, _, err = app.Get(2)
	if err == nil {
		t.Error("absurd value length served")
	}
}
