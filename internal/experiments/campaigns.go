package experiments

import (
	"fmt"

	"hrmsim/internal/core"
	"hrmsim/internal/faults"
	"hrmsim/internal/simmem"
)

// campaign runs (or returns the cached result of) one injection campaign
// cell: an application, an error type, and an optional region restriction
// (kind 0 = all regions).
func (s *Suite) campaign(app string, spec faults.Spec, kind simmem.RegionKind, trials int) (*core.CampaignResult, error) {
	key := fmt.Sprintf("%s|%v|%d|%d", app, spec, kind, trials)
	s.mu.Lock()
	if s.campaigns == nil {
		s.campaigns = make(map[string]*core.CampaignResult)
	}
	if r, ok := s.campaigns[key]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()

	entry, err := s.app(app)
	if err != nil {
		return nil, err
	}
	cfg := core.CampaignConfig{
		Builder:     entry.builder,
		Spec:        spec,
		Trials:      trials,
		Seed:        s.scale.Seed,
		Parallelism: s.scale.Parallelism,
		Golden:      entry.golden,
		Progress:    s.scale.Progress,
	}
	if kind != 0 {
		k := kind
		cfg.Filter = func(r *simmem.Region) bool { return r.Kind() == k }
	}
	res, err := core.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: campaign %s: %w", key, err)
	}
	s.mu.Lock()
	s.campaigns[key] = res
	s.mu.Unlock()
	return res, nil
}

// regionsOf lists the region kinds an application actually maps.
func (s *Suite) regionsOf(app string) ([]simmem.RegionKind, error) {
	entry, err := s.app(app)
	if err != nil {
		return nil, err
	}
	inst, err := entry.builder.Build()
	if err != nil {
		return nil, err
	}
	var kinds []simmem.RegionKind
	for _, r := range inst.Space().Regions() {
		kinds = append(kinds, r.Kind())
	}
	return kinds, nil
}
