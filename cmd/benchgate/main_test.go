package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeFile writes a fixture capture and returns its path.
func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// A realistic go test -json fragment: the benchmark name line and its
// numbers are separate consecutive Output events, both tagged with the
// Test field.
const captureFmt = `{"Time":"2026-08-06T12:05:32Z","Action":"run","Package":"hrmsim","Test":"BenchmarkCampaignLifecycle/fresh"}
{"Time":"2026-08-06T12:05:33Z","Action":"output","Package":"hrmsim","Test":"BenchmarkCampaignLifecycle/fresh","Output":"BenchmarkCampaignLifecycle/fresh             \t"}
{"Time":"2026-08-06T12:05:33Z","Action":"output","Package":"hrmsim","Test":"BenchmarkCampaignLifecycle/fresh","Output":"       1\t 711479310 ns/op\t        %s trials/s\t38464864 B/op\t   70017 allocs/op\n"}
{"Time":"2026-08-06T12:05:34Z","Action":"output","Package":"hrmsim","Test":"BenchmarkCampaignLifecycle/resume","Output":"       1\t 500000000 ns/op\t        %s trials/s\n"}
{"Time":"2026-08-06T12:05:34Z","Action":"output","Package":"hrmsim","Test":"BenchmarkOther","Output":"       1\t 1000 ns/op\t        999.0 trials/s\n"}
{"Time":"2026-08-06T12:05:35Z","Action":"pass","Package":"hrmsim"}
`

func capture(t *testing.T, name, fresh, resume string) string {
	t.Helper()
	return writeFile(t, name, fmt.Sprintf(captureFmt, fresh, resume))
}

func TestParseBenchFile(t *testing.T) {
	p := capture(t, "base.json", "22.49", "30.00")
	got, err := parseBenchFile(p, metricRe("trials/s"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkCampaignLifecycle/fresh":  22.49,
		"BenchmarkCampaignLifecycle/resume": 30.00,
		"BenchmarkOther":                    999.0,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
}

// TestParseBenchFileHandWrittenSummary: a pretty-printed JSON document
// (like BENCH_2026-08-08-sharding.json) is not an event stream and
// parses to zero benchmarks — which the gate then rejects as a
// baseline instead of comparing garbage.
func TestParseBenchFileHandWrittenSummary(t *testing.T) {
	p := writeFile(t, "summary.json", `{
  "date": "2026-08-08",
  "runs": [
    {"mode": "single-process", "trials_per_second": 3268.0}
  ]
}
`)
	got, err := parseBenchFile(p, metricRe("trials/s"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("hand-written summary parsed to %v, want empty", got)
	}
}

// TestParseBenchFileCustomMetric: the parser keys on whichever metric
// the caller ratchets, so one capture can hold both the throughput and
// the adaptive-efficiency benchmarks without cross-talk.
func TestParseBenchFileCustomMetric(t *testing.T) {
	p := writeFile(t, "adaptive.json", `{"Action":"output","Test":"BenchmarkAdaptiveCampaign/adaptive","Output":"       1\t 698779804 ns/op\t        58.00 trials-to-target-ci\n"}
{"Action":"output","Test":"BenchmarkCampaignLifecycle/fresh","Output":"       1\t 711479310 ns/op\t        22.49 trials/s\n"}
`)
	got, err := parseBenchFile(p, metricRe("trials-to-target-ci"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got["BenchmarkAdaptiveCampaign/adaptive"] != 58 {
		t.Errorf("parsed %v, want only the adaptive benchmark at 58", got)
	}
}

func TestCompare(t *testing.T) {
	baseline := map[string]float64{
		"BenchmarkCampaignLifecycle/fresh":  100,
		"BenchmarkCampaignLifecycle/resume": 50,
		"BenchmarkOther":                    999, // outside the prefix: ignored
	}
	current := map[string]float64{
		"BenchmarkCampaignLifecycle/fresh":  95, // -5%: within a 10% ratchet
		"BenchmarkCampaignLifecycle/resume": 40, // -20%: regression
		"BenchmarkOther":                    1,
	}
	regs, compared := compare(baseline, current, "BenchmarkCampaignLifecycle", 0.10, false)
	if len(compared) != 2 {
		t.Fatalf("compared %v, want the two lifecycle benchmarks", compared)
	}
	if len(regs) != 1 || regs[0].Name != "BenchmarkCampaignLifecycle/resume" {
		t.Fatalf("regressions = %+v, want only resume", regs)
	}
	if regs[0].Drop < 0.19 || regs[0].Drop > 0.21 {
		t.Errorf("resume drop = %v, want ~0.20", regs[0].Drop)
	}

	// The relaxed threshold tolerates the same capture.
	regs, _ = compare(baseline, current, "BenchmarkCampaignLifecycle", 0.50, false)
	if len(regs) != 0 {
		t.Errorf("relaxed threshold still flags %+v", regs)
	}

	// Improvements never trip the gate.
	better := map[string]float64{
		"BenchmarkCampaignLifecycle/fresh":  200,
		"BenchmarkCampaignLifecycle/resume": 51,
	}
	regs, _ = compare(baseline, better, "BenchmarkCampaignLifecycle", 0.10, false)
	if len(regs) != 0 {
		t.Errorf("improvement flagged as regression: %+v", regs)
	}
}

// TestCompareLowerBetter: the inverted sense used for cost metrics —
// spending more trials than the baseline regresses, spending fewer
// never does.
func TestCompareLowerBetter(t *testing.T) {
	baseline := map[string]float64{
		"BenchmarkAdaptiveCampaign/adaptive": 58,
		"BenchmarkAdaptiveCampaign/fixed":    400,
	}
	worse := map[string]float64{
		"BenchmarkAdaptiveCampaign/adaptive": 80,  // +38%: the planner got wasteful
		"BenchmarkAdaptiveCampaign/fixed":    400, // unchanged
	}
	regs, compared := compare(baseline, worse, "BenchmarkAdaptiveCampaign", 0.10, true)
	if len(compared) != 2 {
		t.Fatalf("compared %v, want both adaptive benchmarks", compared)
	}
	if len(regs) != 1 || regs[0].Name != "BenchmarkAdaptiveCampaign/adaptive" {
		t.Fatalf("regressions = %+v, want only adaptive", regs)
	}
	if regs[0].Drop < 0.37 || regs[0].Drop > 0.39 {
		t.Errorf("adaptive regression = %v, want ~0.38", regs[0].Drop)
	}

	// Spending fewer trials at the same target is an improvement.
	better := map[string]float64{
		"BenchmarkAdaptiveCampaign/adaptive": 40,
		"BenchmarkAdaptiveCampaign/fixed":    400,
	}
	regs, _ = compare(baseline, better, "BenchmarkAdaptiveCampaign", 0.10, true)
	if len(regs) != 0 {
		t.Errorf("improvement flagged as regression: %+v", regs)
	}
}

// TestCompareAgainstCommittedCapture anchors the parser to the real
// committed baseline format: the latest event-stream BENCH file must
// yield the lifecycle benchmarks the ratchet keys on.
func TestCompareAgainstCommittedCapture(t *testing.T) {
	got, err := parseBenchFile("../../BENCH_2026-08-06-fastpath.json", metricRe("trials/s"))
	if err != nil {
		t.Skipf("committed capture unavailable: %v", err)
	}
	found := false
	for name, v := range got {
		if v > 0 && len(name) >= len("BenchmarkCampaignLifecycle") &&
			name[:len("BenchmarkCampaignLifecycle")] == "BenchmarkCampaignLifecycle" {
			found = true
		}
	}
	if !found {
		t.Errorf("no BenchmarkCampaignLifecycle trials/s in committed capture; parsed %v", got)
	}
}
