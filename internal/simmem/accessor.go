// Accessor: the batched region-access front end of the memory path.
//
// The three applications generate long runs of same-region accesses,
// but the runs interleave — every loop iteration touches both its
// stack frame and a data region, so a single shared one-entry region
// cache on the AddressSpace would thrash on every access. Each
// Accessor instead carries its own one-entry cache: code that holds
// one accessor per region stream (a frame accessor and a data
// accessor, say) resolves findRegion + bounds once per consecutive
// same-region run and then pays only a Contains check per access. The
// span itself — however many pages and codewords it covers — is then
// serviced in one walk against the per-word taint bitmap (senseInto /
// loadDecoded / storeEncoded), bulk-copying clean granules and
// decoding only dirty ones.
//
// Cache invalidation rule: there is none, deliberately. Regions are
// append-only — they are never unmapped, moved, or resized after
// AddRegion — so a cached *Region stays valid for the life of the
// address space, and a region mapped after the cache was populated is
// still found (a cache miss falls through to the binary search over
// the current region table). The cache never needs flushing, including
// across Snapshot/Restore (which restores page contents, not the
// region layout).

package simmem

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Accessor is an independent access handle onto an AddressSpace with
// its own one-entry region cache. Accessors are not safe for concurrent
// use (the AddressSpace itself is single-goroutine; see gate.go for the
// shared-server discipline), cost nothing to create, and any number may
// coexist.
type Accessor struct {
	as   *AddressSpace
	last *Region
}

// NewAccessor returns an accessor with a cold region cache.
func (as *AddressSpace) NewAccessor() *Accessor {
	return &Accessor{as: as}
}

// findRegion locates the region containing addr: the accessor's
// one-entry cache, then the binary search.
func (a *Accessor) findRegion(addr Addr) *Region {
	if r := a.last; r != nil && r.Contains(addr) {
		return r
	}
	if r := a.as.lookupRegion(addr); r != nil {
		a.last = r
		return r
	}
	return nil
}

// locate resolves an access of n bytes at addr to a region, returning a
// fault if the range is unmapped or runs off the end of its region.
func (a *Accessor) locate(addr Addr, n int) (*Region, error) {
	if n < 0 {
		return nil, fmt.Errorf("simmem: negative access length %d", n)
	}
	r := a.findRegion(addr)
	if r == nil {
		return nil, &Fault{Kind: FaultUnmapped, Addr: addr}
	}
	if addr+Addr(n) > r.base+Addr(r.size) {
		return nil, &Fault{Kind: FaultOutOfRange, Addr: addr}
	}
	return r, nil
}

// Load reads len(buf) bytes at addr through the full memory path:
// stuck-at faults are sensed, protected regions decode every covered
// (tainted) codeword — possibly correcting, possibly raising a machine
// check — and access observers are notified.
func (a *Accessor) Load(addr Addr, buf []byte) error {
	as := a.as
	r, err := a.locate(addr, len(buf))
	if err != nil {
		return err
	}
	if as.cache != nil {
		if err := as.cachedLoad(addr, buf); err != nil {
			return err
		}
	} else if r.codec == nil {
		if r.senseInto(buf, int(addr-r.base)) {
			as.fastLoads++
		}
	} else if fast, err := as.loadDecoded(r, int(addr-r.base), buf); err != nil {
		return err
	} else if fast {
		as.fastLoads++
	}
	as.counters.Loads++
	as.notifyAccess(AccessEvent{Addr: addr, Len: len(buf), Kind: Load, Time: as.clock.Now(), Region: r})
	return nil
}

// Store writes data at addr through the full memory path. Stores to
// read-only regions fault. In protected regions, partial codewords are
// read-modify-written: the untouched bytes are decoded first (which can
// itself raise a machine check), then the whole word is re-encoded.
func (a *Accessor) Store(addr Addr, data []byte) error {
	as := a.as
	r, err := a.locate(addr, len(data))
	if err != nil {
		return err
	}
	if r.readOnly {
		return &Fault{Kind: FaultReadOnly, Addr: addr}
	}
	off := int(addr - r.base)
	if as.cache != nil {
		if err := as.cachedStore(addr, data); err != nil {
			return err
		}
	} else if r.codec == nil {
		r.writeBytes(off, data)
	} else if err := as.storeEncoded(r, off, data); err != nil {
		return err
	}
	as.counters.Stores++
	as.notifyAccess(AccessEvent{Addr: addr, Len: len(data), Kind: Store, Time: as.clock.Now(), Region: r})
	return nil
}

// Typed accessors. All use little-endian byte order, like their
// AddressSpace counterparts.

// LoadU64 loads a 64-bit value.
func (a *Accessor) LoadU64(addr Addr) (uint64, error) {
	var b [8]byte
	if err := a.Load(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// StoreU64 stores a 64-bit value.
func (a *Accessor) StoreU64(addr Addr, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return a.Store(addr, b[:])
}

// LoadU32 loads a 32-bit value.
func (a *Accessor) LoadU32(addr Addr) (uint32, error) {
	var b [4]byte
	if err := a.Load(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// StoreU32 stores a 32-bit value.
func (a *Accessor) StoreU32(addr Addr, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return a.Store(addr, b[:])
}

// LoadU16 loads a 16-bit value.
func (a *Accessor) LoadU16(addr Addr) (uint16, error) {
	var b [2]byte
	if err := a.Load(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}

// StoreU16 stores a 16-bit value.
func (a *Accessor) StoreU16(addr Addr, v uint16) error {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	return a.Store(addr, b[:])
}

// LoadU8 loads one byte.
func (a *Accessor) LoadU8(addr Addr) (byte, error) {
	var b [1]byte
	if err := a.Load(addr, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

// StoreU8 stores one byte.
func (a *Accessor) StoreU8(addr Addr, v byte) error {
	b := [1]byte{v}
	return a.Store(addr, b[:])
}

// LoadF64 loads a float64.
func (a *Accessor) LoadF64(addr Addr) (float64, error) {
	u, err := a.LoadU64(addr)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(u), nil
}

// StoreF64 stores a float64.
func (a *Accessor) StoreF64(addr Addr, v float64) error {
	return a.StoreU64(addr, math.Float64bits(v))
}

// LoadF32 loads a float32.
func (a *Accessor) LoadF32(addr Addr) (float32, error) {
	u, err := a.LoadU32(addr)
	if err != nil {
		return 0, err
	}
	return math.Float32frombits(u), nil
}

// StoreF32 stores a float32.
func (a *Accessor) StoreF32(addr Addr, v float32) error {
	return a.StoreU32(addr, math.Float32bits(v))
}
