package core

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hrmsim/internal/apps"
	"hrmsim/internal/faults"
	"hrmsim/internal/obsv"
	"hrmsim/internal/simmem"
)

// TestCancellationDrainsAndReturnsPartial: cancelling mid-campaign stops
// dispatching, drains in-flight trials, and returns the finished prefix
// with Interrupted set — no error, no lost trials.
func TestCancellationDrainsAndReturnsPartial(t *testing.T) {
	b := kvBuilder(t, 11)
	golden, err := GoldenRun(b)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const trials = 60
	res, err := RunContext(ctx, CampaignConfig{
		Builder:     b,
		Spec:        faults.SingleBitSoft,
		Trials:      trials,
		Seed:        3,
		Parallelism: 4,
		Golden:      golden,
		// Progress calls are serialized, so this cancels exactly once
		// ten trials have finished.
		Progress: func(p ProgressInfo) {
			if p.Done == 10 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Error("Interrupted = false, want true")
	}
	if res.Requested != trials {
		t.Errorf("Requested = %d, want %d", res.Requested, trials)
	}
	if len(res.Trials) < 10 || len(res.Trials) >= trials {
		t.Fatalf("got %d trials, want a partial prefix in [10,%d)", len(res.Trials), trials)
	}
	// The partial results must be the same trials a full run produces.
	full, err := Run(CampaignConfig{
		Builder: b, Spec: faults.SingleBitSoft, Trials: trials, Seed: 3,
		Parallelism: 1, Golden: golden,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Trials {
		if !reflect.DeepEqual(tr, full.Trials[tr.Index]) {
			t.Fatalf("trial %d diverged from the uninterrupted run", tr.Index)
		}
	}
	sum := 0
	for _, o := range Outcomes() {
		sum += res.Count(o)
	}
	if sum != res.Completed() {
		t.Errorf("outcome counts sum to %d, want Completed() = %d", sum, res.Completed())
	}
}

// journalMetaFor builds the journal identity used by the in-package
// resilience tests.
func journalMetaFor(b apps.Builder, spec faults.Spec, trials int, seed int64) JournalMeta {
	return JournalMeta{
		App:    b.AppName(),
		Error:  spec.String(),
		Trials: trials,
		Seed:   seed,
	}
}

// TestInterruptedResumeEquivalence pins the tentpole guarantee: for all
// three applications at parallelism 1 and 4, a campaign that is
// interrupted (journaling as it goes) and then resumed from that journal
// produces bit-identical trials, outcome counts, and aggregates to an
// uninterrupted run.
func TestInterruptedResumeEquivalence(t *testing.T) {
	builders := map[string]func(*testing.T, int64) apps.Builder{
		"websearch": wsBuilder,
		"kvstore":   kvBuilder,
		"graphmine": gmBuilder,
	}
	const trials = 30
	const seed = 77
	spec := faults.SingleBitHard
	for appName, mk := range builders {
		for _, par := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/par%d", appName, par), func(t *testing.T) {
				t.Parallel()
				b := mk(t, 21)
				golden, err := GoldenRun(b)
				if err != nil {
					t.Fatal(err)
				}
				base, err := Run(CampaignConfig{
					Builder: b, Spec: spec, Trials: trials, Seed: seed,
					Parallelism: par, Golden: golden,
				})
				if err != nil {
					t.Fatal(err)
				}

				// Interrupted leg: journal every trial, cancel after 8.
				var buf bytes.Buffer
				j, err := NewJournal(&buf, journalMetaFor(b, spec, trials, seed))
				if err != nil {
					t.Fatal(err)
				}
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				partial, err := RunContext(ctx, CampaignConfig{
					Builder: b, Spec: spec, Trials: trials, Seed: seed,
					Parallelism: par, Golden: golden, Journal: j,
					Progress: func(p ProgressInfo) {
						if p.Done == 8 {
							cancel()
						}
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := j.Close(); err != nil {
					t.Fatal(err)
				}
				if len(partial.Trials) >= trials {
					t.Fatalf("interrupt raced: all %d trials ran", trials)
				}

				// Resume leg: replay the journal, run the rest.
				meta, recs, err := ReadJournal(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				if err := meta.Matches(journalMetaFor(b, spec, trials, seed)); err != nil {
					t.Fatal(err)
				}
				if len(recs) != len(partial.Trials) {
					t.Fatalf("journal has %d records, interrupted run had %d trials",
						len(recs), len(partial.Trials))
				}
				resumed, err := Run(CampaignConfig{
					Builder: b, Spec: spec, Trials: trials, Seed: seed,
					Parallelism: par, Golden: golden, Resume: recs,
				})
				if err != nil {
					t.Fatal(err)
				}
				if resumed.Interrupted {
					t.Error("resumed run reported Interrupted")
				}
				if resumed.Resumed != len(recs) {
					t.Errorf("Resumed = %d, want %d", resumed.Resumed, len(recs))
				}

				// Bit-identical trials and aggregates.
				if !reflect.DeepEqual(base.Trials, resumed.Trials) {
					for i := range base.Trials {
						if !reflect.DeepEqual(base.Trials[i], resumed.Trials[i]) {
							t.Fatalf("trial %d diverged:\nbase:    %+v\nresumed: %+v",
								i, base.Trials[i], resumed.Trials[i])
						}
					}
					t.Fatal("trials diverged")
				}
				for _, o := range Outcomes() {
					if base.Count(o) != resumed.Count(o) {
						t.Errorf("outcome %v: base %d, resumed %d", o, base.Count(o), resumed.Count(o))
					}
				}
				bc, err1 := base.CrashProbability(0.90)
				rc, err2 := resumed.CrashProbability(0.90)
				if err1 != nil || err2 != nil || bc != rc {
					t.Errorf("crash probability diverged: %+v vs %+v (%v, %v)", bc, rc, err1, err2)
				}
				bm, bx := base.IncorrectPerBillion()
				rm, rx := resumed.IncorrectPerBillion()
				if bm != rm || bx != rx {
					t.Errorf("incorrect-per-billion diverged: (%g,%g) vs (%g,%g)", bm, bx, rm, rx)
				}
				if base.MeanHorizon() != resumed.MeanHorizon() {
					t.Errorf("mean horizon diverged: %v vs %v", base.MeanHorizon(), resumed.MeanHorizon())
				}
			})
		}
	}
}

// hangApp is a tiny deterministic app whose hanging variant blocks in
// Serve until released — the "pathological path" the wall-clock watchdog
// exists for.
type hangApp struct {
	as      *simmem.AddressSpace
	base    simmem.Addr
	hang    bool
	release <-chan struct{}
}

func (a *hangApp) Name() string                { return "hang" }
func (a *hangApp) Space() *simmem.AddressSpace { return a.as }
func (a *hangApp) NumRequests() int            { return 8 }
func (a *hangApp) Serve(i int) (apps.Response, error) {
	if a.hang {
		<-a.release
		return apps.Response{}, apps.Assertf("hung request released")
	}
	a.as.Clock().Advance(time.Second)
	d := apps.NewDigest()
	for k := 0; k < 4; k++ {
		v, err := a.as.LoadU64(a.base + simmem.Addr(8*((i+k)%16)))
		if err != nil {
			return apps.Response{}, err
		}
		d.AddU64(v)
	}
	return d.Response(), nil
}

// hangBuilder hangs the instance of one specific Build call (1-based),
// counted atomically because watchdog-abandoned goroutines may overlap
// the next build.
type hangBuilder struct {
	hangBuild int64
	builds    atomic.Int64
	release   chan struct{}
}

func (b *hangBuilder) AppName() string { return "hang" }
func (b *hangBuilder) Build() (apps.App, error) {
	n := b.builds.Add(1)
	as, err := simmem.New(simmem.Config{PageSize: 64})
	if err != nil {
		return nil, err
	}
	r, err := as.AddRegion(simmem.RegionSpec{Name: "data", Kind: simmem.RegionHeap, Size: 128})
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 128)
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	if err := as.WriteRaw(r.Base(), buf); err != nil {
		return nil, err
	}
	r.SetUsed(128)
	return &hangApp{as: as, base: r.Base(), hang: n == b.hangBuild, release: b.release}, nil
}

// TestWatchdogDeadlineAbortsHungTrial: a deliberately hung application
// must not wedge the campaign — the trial is recorded as aborted
// (reason "deadline") and every other trial completes normally.
func TestWatchdogDeadlineAbortsHungTrial(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	// Build 1 is the golden run; builds 2..6 serve trials 0..4 at
	// parallelism 1, so hanging build 3 hangs exactly trial 1.
	b := &hangBuilder{hangBuild: 3, release: release}
	golden, err := GoldenRun(b)
	if err != nil {
		t.Fatal(err)
	}
	reg := obsv.NewRegistry()
	done := make(chan struct{})
	var res *CampaignResult
	go func() {
		defer close(done)
		res, err = Run(CampaignConfig{
			Builder:      b,
			Spec:         faults.SingleBitSoft,
			Trials:       5,
			Seed:         2,
			Parallelism:  1,
			Golden:       golden,
			Metrics:      reg,
			TrialTimeout: 50 * time.Millisecond,
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("campaign wedged despite the watchdog")
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 5 {
		t.Fatalf("got %d trials, want 5", len(res.Trials))
	}
	for _, tr := range res.Trials {
		if tr.Index == 1 {
			if tr.Disposition != DispositionAborted || tr.AbortReason != AbortReasonDeadline {
				t.Errorf("trial 1: disposition %v reason %q, want aborted/deadline",
					tr.Disposition, tr.AbortReason)
			}
			if !strings.Contains(tr.AbortDetail, "deadline") {
				t.Errorf("trial 1 detail = %q, want a deadline mention", tr.AbortDetail)
			}
			continue
		}
		if tr.Disposition != DispositionCompleted {
			t.Errorf("trial %d: disposition %v, want completed", tr.Index, tr.Disposition)
		}
	}
	if got := res.Completed(); got != 4 {
		t.Errorf("Completed() = %d, want 4", got)
	}
	if got := res.AbortedCount(); got != 1 {
		t.Errorf("AbortedCount() = %d, want 1", got)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[`campaign_trials_aborted_total{reason="deadline"}`]; got != 1 {
		t.Errorf("aborted{deadline} counter = %d, want 1", got)
	}
	if got := snap.Counters["campaign_trials_total"]; got != 4 {
		t.Errorf("campaign_trials_total = %d, want 4 (completed only)", got)
	}
}

// TestOpBudgetWatchdog: a tiny virtual-operation budget aborts trials
// deterministically (same dispositions on every run and lifecycle), and
// a budget that never fires leaves the campaign bit-identical to an
// unbudgeted one.
func TestOpBudgetWatchdog(t *testing.T) {
	b := wsBuilder(t, 13)
	golden, err := GoldenRun(b)
	if err != nil {
		t.Fatal(err)
	}
	runWith := func(budget int64, lc Lifecycle, par int) *CampaignResult {
		t.Helper()
		res, err := Run(CampaignConfig{
			Builder: b, Lifecycle: lc, Spec: faults.SingleBitSoft,
			Trials: 20, Seed: 8, Parallelism: par, Golden: golden,
			TrialOpBudget: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// A budget far above any trial's operation count never perturbs
	// the taxonomy.
	unbudgeted := runWith(0, LifecycleFresh, 1)
	huge := runWith(1<<40, LifecycleFresh, 1)
	if !reflect.DeepEqual(unbudgeted.Trials, huge.Trials) {
		t.Fatal("a never-exceeded op budget changed trial results")
	}

	// A tiny budget aborts every trial (the workload performs far more
	// than 25 accesses), identically across runs, lifecycles, and
	// parallelism.
	small := runWith(25, LifecycleFresh, 1)
	if small.AbortedCount() == 0 {
		t.Fatal("tiny op budget aborted nothing")
	}
	for _, tr := range small.Trials {
		if tr.Disposition == DispositionAborted && tr.AbortReason != AbortReasonOpBudget {
			t.Errorf("trial %d abort reason %q, want %q", tr.Index, tr.AbortReason, AbortReasonOpBudget)
		}
	}
	for _, variant := range []struct {
		name string
		res  *CampaignResult
	}{
		{"rerun", runWith(25, LifecycleFresh, 1)},
		{"snapshot", runWith(25, LifecycleSnapshot, 1)},
		{"parallel", runWith(25, LifecycleFresh, 4)},
	} {
		if !reflect.DeepEqual(small.Trials, variant.res.Trials) {
			t.Errorf("op-budget aborts not deterministic across %s", variant.name)
		}
	}
}

// flakyBuilder fails specific Build calls (1-based) to exercise the
// retry policy.
type flakyBuilder struct {
	apps.Builder
	failBuilds map[int64]bool
	builds     atomic.Int64
}

func (b *flakyBuilder) Build() (apps.App, error) {
	n := b.builds.Add(1)
	if b.failBuilds[n] {
		return nil, fmt.Errorf("transient build failure %d", n)
	}
	return b.Builder.Build()
}

// TestRetryRecoversTransientFailures: transient build failures are
// retried with backoff and the campaign's results are bit-identical to
// an unperturbed run.
func TestRetryRecoversTransientFailures(t *testing.T) {
	inner := kvBuilder(t, 5)
	golden, err := GoldenRun(inner)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(CampaignConfig{
		Builder: freshOnlyBuilder{b: inner}, Spec: faults.SingleBitSoft,
		Trials: 6, Seed: 4, Parallelism: 1, Golden: golden,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Builds 1 and 2 (trial 0's first two attempts) fail; the default
	// retry budget of 2 absorbs both.
	flaky := &flakyBuilder{Builder: freshOnlyBuilder{b: inner}, failBuilds: map[int64]bool{1: true, 2: true}}
	reg := obsv.NewRegistry()
	res, err := Run(CampaignConfig{
		Builder: flaky, Spec: faults.SingleBitSoft,
		Trials: 6, Seed: 4, Parallelism: 1, Golden: golden,
		Metrics: reg, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean.Trials, res.Trials) {
		t.Fatal("retried campaign diverged from the unperturbed run")
	}
	if got := reg.Snapshot().Counters["campaign_trials_retried_total"]; got != 2 {
		t.Errorf("campaign_trials_retried_total = %d, want 2", got)
	}
}

// TestRetryExhaustionAbortsTrial: a permanently failing worker aborts
// the trial (reason "worker_error") without failing the campaign.
func TestRetryExhaustionAbortsTrial(t *testing.T) {
	inner := kvBuilder(t, 5)
	golden, err := GoldenRun(inner)
	if err != nil {
		t.Fatal(err)
	}
	// Every campaign build fails (the golden run above used the inner
	// builder directly).
	alwaysFail := &flakyBuilder{Builder: freshOnlyBuilder{b: inner}, failBuilds: map[int64]bool{}}
	for i := int64(1); i <= 64; i++ {
		alwaysFail.failBuilds[i] = true
	}
	reg := obsv.NewRegistry()
	res, err := Run(CampaignConfig{
		Builder: alwaysFail, Spec: faults.SingleBitSoft,
		Trials: 3, Seed: 4, Parallelism: 1, Golden: golden,
		Metrics: reg, MaxRetries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Completed(); got != 0 {
		t.Errorf("Completed() = %d, want 0", got)
	}
	for _, tr := range res.Trials {
		if tr.Disposition != DispositionAborted || tr.AbortReason != AbortReasonWorkerError {
			t.Errorf("trial %d: disposition %v reason %q, want aborted/worker_error",
				tr.Index, tr.Disposition, tr.AbortReason)
		}
		if !strings.Contains(tr.AbortDetail, "transient build failure") {
			t.Errorf("trial %d detail %q lacks the underlying error", tr.Index, tr.AbortDetail)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters[`campaign_trials_aborted_total{reason="worker_error"}`]; got != 3 {
		t.Errorf("aborted{worker_error} = %d, want 3", got)
	}
	if got := snap.Counters["campaign_trials_retried_total"]; got != 0 {
		t.Errorf("retried = %d, want 0 with MaxRetries=-1", got)
	}
}

// TestCrashStackCaptured: a panic inside application code surfaces a
// sanitized, deterministic stack on the trial result.
func TestCrashStackCaptured(t *testing.T) {
	stack := sanitizeStack([]byte(
		"goroutine 17 [running]:\n" +
			"runtime/debug.Stack()\n" +
			"\t/usr/local/go/src/runtime/debug/stack.go:26 +0x64\n" +
			"hrmsim/internal/core.serveGuarded.func1()\n" +
			"\t/root/repo/internal/core/campaign.go:610 +0x34\n" +
			"panic({0x104b8c660?, 0x104c8a980?})\n" +
			"\t/usr/local/go/src/runtime/panic.go:792 +0x124\n" +
			"hrmsim/internal/apps/websearch.(*App).Serve(0x14000158000, 0x12)\n" +
			"\t/root/repo/internal/apps/websearch/search.go:210 +0x1e4\n" +
			"hrmsim/internal/core.serveGuarded({0x104cd3e38?, 0x14000158000?}, 0x12)\n" +
			"\t/root/repo/internal/core/campaign.go:605 +0x5c\n" +
			"hrmsim/internal/core.injectAndServe(...)\n" +
			"\t/root/repo/internal/core/campaign.go:520\n"))
	want := "runtime/debug.Stack\n" +
		"\t/usr/local/go/src/runtime/debug/stack.go:26\n" +
		"hrmsim/internal/core.serveGuarded.func1\n" +
		"\t/root/repo/internal/core/campaign.go:610\n" +
		"panic\n" +
		"\t/usr/local/go/src/runtime/panic.go:792\n" +
		"hrmsim/internal/apps/websearch.(*App).Serve\n" +
		"\t/root/repo/internal/apps/websearch/search.go:210"
	if stack != want {
		t.Errorf("sanitizeStack:\ngot:\n%s\nwant:\n%s", stack, want)
	}
}
