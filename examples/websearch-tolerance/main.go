// websearch-tolerance reproduces the paper's in-depth WebSearch analysis
// in miniature: per-region vulnerability to soft and hard errors
// (Figs. 4/6), safe ratios (Fig. 5b), and data recoverability (Table 5).
//
//	go run ./examples/websearch-tolerance
package main

import (
	"fmt"
	"log"

	"hrmsim"
)

func main() {
	fmt.Println("== Per-region vulnerability of WebSearch (Figs. 4/6) ==")
	fmt.Printf("%-8s  %-10s  %10s  %14s\n", "region", "error", "crash prob", "incorrect/B")
	for _, region := range []hrmsim.Region{hrmsim.RegionPrivate, hrmsim.RegionHeap, hrmsim.RegionStack} {
		for _, et := range []hrmsim.ErrorType{hrmsim.SoftSingleBit, hrmsim.HardSingleBit, hrmsim.HardDoubleBit} {
			c, err := hrmsim.Characterize(hrmsim.CharacterizeConfig{
				App:    hrmsim.AppWebSearch,
				Error:  et,
				Region: region,
				Trials: 150,
				Size:   hrmsim.SizeSmall,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s  %-10s  %9.1f%%  %14.3g\n",
				region, et, c.CrashProbability*100, c.IncorrectPerBillion)
		}
	}

	fmt.Println("\n== Access behaviour (Fig. 5b safe ratios, Table 5 recoverability) ==")
	prof, err := hrmsim.AccessProfile(hrmsim.AccessProfileConfig{
		App:         hrmsim.AppWebSearch,
		Size:        hrmsim.SizeSmall,
		Watchpoints: 400,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s  %14s  %12s  %12s\n", "region", "mean safe ratio", "implicit rec", "explicit rec")
	for _, r := range prof.Regions {
		fmt.Printf("%-8s  %14.2f  %11.0f%%  %11.0f%%\n",
			r.Region, r.MeanSafeRatio, r.ImplicitRecoverable*100, r.ExplicitRecoverable*100)
	}
	fmt.Println("\nReading the output: the read-only index (private) never masks by")
	fmt.Println("overwrite but is fully recoverable from disk; the stack masks soft")
	fmt.Println("errors by overwrite yet crashes quickly on hard (stuck-at) faults —")
	fmt.Println("exactly the asymmetry the paper's HRM designs exploit.")
}
