package hrmsim

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestCharacterizeAdaptiveStopsEarly: an adaptive characterization stops
// at its CI target well inside the trial budget and reports the savings.
func TestCharacterizeAdaptiveStopsEarly(t *testing.T) {
	c, err := Characterize(CharacterizeConfig{
		App:       AppKVStore,
		Error:     SoftSingleBit,
		Size:      SizeSmall,
		Trials:    200,
		Seed:      9,
		TargetCI:  0.08,
		MinTrials: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.TargetCI != 0.08 {
		t.Errorf("TargetCI = %v, want 0.08", c.TargetCI)
	}
	if c.Planned >= c.Trials || c.Planned < 20 {
		t.Fatalf("Planned = %d of %d: the stopping rule did not engage", c.Planned, c.Trials)
	}
	if c.TrialsSaved != c.Trials-c.Planned {
		t.Errorf("TrialsSaved = %d, want %d", c.TrialsSaved, c.Trials-c.Planned)
	}
	if c.Completed != c.Planned {
		t.Errorf("Completed = %d, Planned = %d", c.Completed, c.Planned)
	}
	// The interval actually reached the target.
	if half := (c.CrashCIHigh - c.CrashCILow) / 2; half > 0.08+1e-9 {
		t.Errorf("final CI half-width %v above the 0.08 target", half)
	}
}

// TestCharacterizeAdaptiveResumeEquivalence: an adaptive campaign
// interrupted mid-run and resumed from its journal is bit-identical to
// an uninterrupted one — the planner replays to the same verdicts.
func TestCharacterizeAdaptiveResumeEquivalence(t *testing.T) {
	base := CharacterizeConfig{
		App:       AppKVStore,
		Error:     SoftSingleBit,
		Size:      SizeSmall,
		Trials:    200,
		Seed:      9,
		TargetCI:  0.08,
		MinTrials: 20,
	}
	want, err := Characterize(base)
	if err != nil {
		t.Fatal(err)
	}

	journal := filepath.Join(t.TempDir(), "trials.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	interruptedCfg := base
	interruptedCfg.JournalPath = journal
	interruptedCfg.Context = ctx
	interruptedCfg.Progress = func(p ProgressInfo) {
		if p.Done == 12 {
			cancel()
		}
	}
	partial, err := Characterize(interruptedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Interrupted {
		t.Fatal("interrupted run did not report Interrupted")
	}
	if partial.Completed >= want.Planned {
		t.Fatalf("interrupt raced: %d of %d planned trials completed", partial.Completed, want.Planned)
	}

	resumeCfg := base
	resumeCfg.ResumePath = journal
	got, err := Characterize(resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Interrupted {
		t.Error("resumed run reported Interrupted")
	}
	if got.Resumed == 0 {
		t.Error("resumed run resumed nothing")
	}
	wantCmp, gotCmp := *want, *got
	gotCmp.Resumed = wantCmp.Resumed
	if !reflect.DeepEqual(wantCmp, gotCmp) {
		t.Errorf("resumed adaptive characterization diverged:\nbase:    %+v\nresumed: %+v", wantCmp, gotCmp)
	}
}

// TestCharacterizeAdaptiveValidation: the facade rejects inconsistent
// adaptive configurations and the shard/adaptive combination.
func TestCharacterizeAdaptiveValidation(t *testing.T) {
	base := CharacterizeConfig{App: AppKVStore, Error: SoftSingleBit, Size: SizeSmall, Trials: 40, Seed: 1}

	bad := base
	bad.TargetCI = 1.5
	if _, err := Characterize(bad); err == nil {
		t.Error("TargetCI 1.5 accepted")
	}
	bad = base
	bad.TargetCI = -0.1
	if _, err := Characterize(bad); err == nil {
		t.Error("negative TargetCI accepted")
	}
	bad = base
	bad.MinTrials = 10
	if _, err := Characterize(bad); err == nil {
		t.Error("MinTrials without TargetCI accepted")
	}
	bad = base
	bad.MaxTrials = 10
	if _, err := Characterize(bad); err == nil {
		t.Error("MaxTrials without TargetCI accepted")
	}
	bad = base
	bad.TargetCI = 0.05
	bad.ShardIndex, bad.ShardCount = 0, 2
	if _, err := Characterize(bad); err == nil {
		t.Error("sharded adaptive campaign accepted")
	} else if !strings.Contains(err.Error(), "index space") {
		t.Errorf("shard rejection error %v does not explain the conflict", err)
	}
	bad = base
	bad.TargetCI = 0.05
	bad.MinTrials = 50
	bad.MaxTrials = 30
	if _, err := Characterize(bad); err == nil {
		t.Error("MinTrials above MaxTrials accepted")
	}
}
