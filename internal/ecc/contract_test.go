package ecc

import (
	"bytes"
	"math/rand"
	"testing"

	"hrmsim/internal/simmem"
)

// TestTaintClearingContract pins the three codec rules the simulated
// memory's clean-page fast path relies on (see the Codec interface doc in
// internal/simmem and DESIGN.md):
//
//  1. Decode(data, Encode(data)) is VerdictClean for every data pattern.
//  2. A VerdictClean decode leaves data and check unmodified.
//  3. A VerdictCorrected decode leaves data and check in a state that
//     re-decodes VerdictClean.
//
// Rules 1 and 2 are what make an untainted page readable as a raw byte
// copy; rule 3 is what lets a write-back scrub (or scrub-on-correct)
// clear taint after repairing a correctable pattern.
func TestTaintClearingContract(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, c := range wordCodecs() {
		t.Run(c.Name(), func(t *testing.T) {
			for trial := 0; trial < 500; trial++ {
				data, check := encodeRandom(c, rng)
				origData := append([]byte(nil), data...)
				origCheck := append([]byte(nil), check...)

				// Rules 1 and 2 on the clean word.
				if v := c.Decode(data, check); v != simmem.VerdictClean {
					t.Fatalf("encode/decode roundtrip = %v, want clean", v)
				}
				if !bytes.Equal(data, origData) || !bytes.Equal(check, origCheck) {
					t.Fatal("clean decode modified data or check storage")
				}

				// Rule 3: inject 1..4 random bit flips across data and
				// check; whenever the codec reports a correction, the
				// corrected state must itself be clean.
				flips := 1 + rng.Intn(4)
				for f := 0; f < flips; f++ {
					bit := rng.Intn((len(data) + len(check)) * 8)
					if bit < len(data)*8 {
						data[bit/8] ^= 1 << (bit % 8)
					} else {
						bit -= len(data) * 8
						check[bit/8] ^= 1 << (bit % 8)
					}
				}
				preData := append([]byte(nil), data...)
				preCheck := append([]byte(nil), check...)
				switch c.Decode(data, check) {
				case simmem.VerdictCorrected:
					// Beyond-capability patterns may miscorrect to the
					// wrong word — the contract only requires that whatever
					// the codec settled on is self-consistent.
					if v := c.Decode(data, check); v != simmem.VerdictClean {
						t.Fatalf("corrected word re-decodes as %v, want clean", v)
					}
				case simmem.VerdictClean:
					// Rule 2 applies to any clean verdict, aliased
					// codewords included: decode must not have touched the
					// stored bytes.
					if !bytes.Equal(data, preData) || !bytes.Equal(check, preCheck) {
						t.Fatal("clean decode modified data or check storage")
					}
				case simmem.VerdictUncorrectable:
					// Nothing to assert: the memory path taints the page
					// and raises a machine check instead of trusting it.
				}
			}
		})
	}
}
