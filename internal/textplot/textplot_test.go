package textplot

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:   "Demo",
		Headers: []string{"Name", "Value"},
	}
	tb.AddRow("alpha", "1")
	tb.AddRow("beta-long", "22")
	out := tb.Render()
	if !strings.Contains(out, "Demo") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns aligned: "Value" column starts at the same offset.
	h := strings.Index(lines[1], "Value")
	r := strings.Index(lines[3], "1")
	if h != r {
		t.Errorf("misaligned columns: header at %d, row at %d\n%s", h, r, out)
	}
}

func TestTableNoHeaders(t *testing.T) {
	tb := &Table{}
	tb.AddRow("x", "y")
	out := tb.Render()
	if strings.Contains(out, "--") {
		t.Error("separator rendered without headers")
	}
}

func TestBarChartLinear(t *testing.T) {
	out := BarChart("Chart", []Bar{
		{Label: "a", Value: 10},
		{Label: "b", Value: 5},
		{Label: "zero", Value: 0},
	}, 20, false)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	aCount := strings.Count(lines[1], "#")
	bCount := strings.Count(lines[2], "#")
	if aCount != 20 || bCount != 10 {
		t.Errorf("bar lengths = %d, %d; want 20, 10", aCount, bCount)
	}
	if strings.Count(lines[3], "#") != 0 {
		t.Error("zero value drew a bar")
	}
}

func TestBarChartLog(t *testing.T) {
	out := BarChart("", []Bar{
		{Label: "big", Value: 1e6},
		{Label: "small", Value: 1},
	}, 30, true)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	big := strings.Count(lines[0], "#")
	small := strings.Count(lines[1], "#")
	if big != 30 {
		t.Errorf("max bar = %d, want full width", big)
	}
	if small == 0 {
		t.Error("log scale lost the small value entirely")
	}
	if small >= big {
		t.Error("ordering broken")
	}
}

func TestBarChartNotes(t *testing.T) {
	out := BarChart("", []Bar{{Label: "x", Value: 1, Note: "[0.5, 1.5]"}}, 10, false)
	if !strings.Contains(out, "[0.5, 1.5]") {
		t.Error("note missing")
	}
}

func TestFormatValue(t *testing.T) {
	tests := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{1e7, "1e+07"},
		{150, "150"},
		{1.234, "1.23"},
	}
	for _, tt := range tests {
		if got := formatValue(tt.v); got != tt.want {
			t.Errorf("formatValue(%g) = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestHistogramPlot(t *testing.T) {
	out := HistogramPlot("H", []float64{1, 2, 3}, []int{4, 8, 0}, 16)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if strings.Count(lines[2], "#") != 16 {
		t.Error("max bin not full width")
	}
	if strings.Count(lines[1], "#") != 8 {
		t.Error("half bin wrong length")
	}
	if strings.Count(lines[3], "#") != 0 {
		t.Error("empty bin drew marks")
	}
}

func TestViolinStrip(t *testing.T) {
	s := ViolinStrip([]float64{0, 0.5, 1, -1, 2})
	if len(s) != 5 {
		t.Fatalf("length = %d", len(s))
	}
	if s[0] != ' ' || s[2] != '@' {
		t.Errorf("glyph mapping wrong: %q", s)
	}
	if s[3] != ' ' || s[4] != '@' {
		t.Errorf("clamping wrong: %q", s)
	}
}

func TestViolinPlot(t *testing.T) {
	out := ViolinPlot("V", []string{"heap", "stack"},
		[][]float64{{0, 1, 0}, {1, 0, 0}},
		[]float64{0.5, 0.0}, 0, 1)
	if !strings.Contains(out, "heap") || !strings.Contains(out, "stack") {
		t.Error("labels missing")
	}
	if !strings.Contains(out, "mean=0.50") {
		t.Error("mean marker missing")
	}
	if !strings.Contains(out, "@") {
		t.Error("density glyphs missing")
	}
}
