package ecc

import (
	"bytes"
	"math/rand"
	"testing"

	"hrmsim/internal/simmem"
)

// flipCodewordBit flips bit i of the (data ++ check) bit string.
func flipCodewordBit(data, check []byte, i int) {
	if i < len(data)*8 {
		data[i/8] ^= 1 << (i % 8)
		return
	}
	i -= len(data) * 8
	check[i/8] ^= 1 << (i % 8)
}

// TestSECDEDExhaustiveDoubleBit verifies that every possible double-bit
// error pattern across the full codeword (data and check storage) is
// detected and never miscorrected.
func TestSECDEDExhaustiveDoubleBit(t *testing.T) {
	s := NewSECDED()
	rng := rand.New(rand.NewSource(21))
	data, check := encodeRandom(s, rng)
	orig := append([]byte(nil), data...)
	origCheck := append([]byte(nil), check...)
	total := 72 // 64 data + 8 check bits
	for b1 := 0; b1 < total; b1++ {
		for b2 := b1 + 1; b2 < total; b2++ {
			d := append([]byte(nil), orig...)
			c := append([]byte(nil), origCheck...)
			flipCodewordBit(d, c, b1)
			flipCodewordBit(d, c, b2)
			switch s.Decode(d, c) {
			case simmem.VerdictClean:
				t.Fatalf("double (%d,%d) decoded clean", b1, b2)
			case simmem.VerdictCorrected:
				t.Fatalf("double (%d,%d) miscorrected", b1, b2)
			}
		}
	}
}

// TestDECTEDExhaustiveDoubleBit verifies every double-bit pattern over the
// full DEC-TED codeword (64 data + 14 BCH + 1 parity bits) is corrected
// back to the original data.
func TestDECTEDExhaustiveDoubleBit(t *testing.T) {
	d := NewDECTED()
	rng := rand.New(rand.NewSource(22))
	data, check := encodeRandom(d, rng)
	orig := append([]byte(nil), data...)
	origCheck := append([]byte(nil), check...)
	total := 64 + 15
	for b1 := 0; b1 < total; b1++ {
		for b2 := b1 + 1; b2 < total; b2++ {
			dd := append([]byte(nil), orig...)
			cc := append([]byte(nil), origCheck...)
			flipCodewordBit(dd, cc, b1)
			flipCodewordBit(dd, cc, b2)
			if v := d.Decode(dd, cc); v != simmem.VerdictCorrected {
				t.Fatalf("double (%d,%d): verdict %v", b1, b2, v)
			}
			if !bytes.Equal(dd, orig) {
				t.Fatalf("double (%d,%d): data not restored", b1, b2)
			}
		}
	}
}

// TestDECTEDExhaustiveSingleBit verifies every single-bit position.
func TestDECTEDExhaustiveSingleBit(t *testing.T) {
	d := NewDECTED()
	rng := rand.New(rand.NewSource(23))
	data, check := encodeRandom(d, rng)
	orig := append([]byte(nil), data...)
	for b := 0; b < 64+15; b++ {
		dd := append([]byte(nil), orig...)
		cc := append([]byte(nil), check...)
		flipCodewordBit(dd, cc, b)
		if v := d.Decode(dd, cc); v != simmem.VerdictCorrected {
			t.Fatalf("single %d: verdict %v", b, v)
		}
		if !bytes.Equal(dd, orig) {
			t.Fatalf("single %d: data not restored", b)
		}
	}
}

// TestChipkillExhaustiveSingleSymbol verifies that every nonzero error
// pattern confined to any one symbol (chip) — 18 symbols x 255 patterns —
// is corrected.
func TestChipkillExhaustiveSingleSymbol(t *testing.T) {
	ck := NewChipkill()
	rng := rand.New(rand.NewSource(24))
	data, check := encodeRandom(ck, rng)
	orig := append([]byte(nil), data...)
	origCheck := append([]byte(nil), check...)
	for sym := 0; sym < 18; sym++ {
		for pat := 1; pat < 256; pat++ {
			d := append([]byte(nil), orig...)
			c := append([]byte(nil), origCheck...)
			if sym < 2 {
				c[sym] ^= byte(pat)
			} else {
				d[sym-2] ^= byte(pat)
			}
			if v := ck.Decode(d, c); v != simmem.VerdictCorrected {
				t.Fatalf("symbol %d pattern %#x: verdict %v", sym, pat, v)
			}
			if !bytes.Equal(d, orig) || !bytes.Equal(c, origCheck) {
				t.Fatalf("symbol %d pattern %#x: not restored", sym, pat)
			}
		}
	}
}

// TestRAIMExhaustiveSingleSymbol verifies single-symbol correction across
// all 20 symbol positions and all 255 patterns.
func TestRAIMExhaustiveSingleSymbol(t *testing.T) {
	r := NewRAIM()
	rng := rand.New(rand.NewSource(25))
	data, check := encodeRandom(r, rng)
	orig := append([]byte(nil), data...)
	origCheck := append([]byte(nil), check...)
	for sym := 0; sym < 20; sym++ {
		for pat := 1; pat < 256; pat++ {
			d := append([]byte(nil), orig...)
			c := append([]byte(nil), origCheck...)
			if sym < 4 {
				c[sym] ^= byte(pat)
			} else {
				d[sym-4] ^= byte(pat)
			}
			if v := r.Decode(d, c); v != simmem.VerdictCorrected {
				t.Fatalf("symbol %d pattern %#x: verdict %v", sym, pat, v)
			}
			if !bytes.Equal(d, orig) || !bytes.Equal(c, origCheck) {
				t.Fatalf("symbol %d pattern %#x: not restored", sym, pat)
			}
		}
	}
}

// TestMirrorExhaustiveSingleBit verifies single-bit correction across the
// full 18-byte mirrored codeword.
func TestMirrorExhaustiveSingleBit(t *testing.T) {
	m := NewMirror()
	rng := rand.New(rand.NewSource(26))
	data, check := encodeRandom(m, rng)
	orig := append([]byte(nil), data...)
	origCheck := append([]byte(nil), check...)
	for b := 0; b < (8+10)*8; b++ {
		d := append([]byte(nil), orig...)
		c := append([]byte(nil), origCheck...)
		flipCodewordBit(d, c, b)
		if v := m.Decode(d, c); v != simmem.VerdictCorrected {
			t.Fatalf("bit %d: verdict %v", b, v)
		}
		if !bytes.Equal(d, orig) {
			t.Fatalf("bit %d: data not restored", b)
		}
	}
}
