// Package apps defines the interface between data-intensive applications
// built on simulated memory and the characterization engine, plus shared
// plumbing (response digests, runaway-loop watchdogs, crash-worthy error
// classification).
//
// The three applications of the paper's case study live in subpackages:
// websearch (interactive web search over a read-only in-memory index),
// kvstore (a Memcached-style in-memory key–value store), and graphmine (a
// GraphLab-style framework running TunkRank). Each stores every data
// structure it serves from in a simmem.AddressSpace and manipulates it
// exclusively through simulated loads and stores, so injected memory
// errors corrupt exactly the bytes the application logic consumes.
package apps

import (
	"errors"
	"fmt"

	"hrmsim/internal/simmem"
)

// Response is the digest of one request's output, compared against a
// golden (error-free) run to detect incorrect results.
type Response struct {
	// Digest is an FNV-1a hash of the request's observable output.
	Digest uint64
}

// App is one application instance bound to an address space. Serve must be
// deterministic for a given build: the campaign engine records a golden
// run and compares digests request by request.
type App interface {
	// Name identifies the application ("websearch", "kvstore",
	// "graphmine").
	Name() string
	// Space returns the simulated memory the application runs on.
	Space() *simmem.AddressSpace
	// NumRequests is the length of the client workload.
	NumRequests() int
	// Serve executes request i and returns the response digest. Any
	// returned error is crash-worthy: a memory fault, a failed internal
	// invariant, or a runaway-loop watchdog.
	Serve(i int) (Response, error)
}

// Builder constructs fresh, identical application instances — one per
// injection trial, so every trial starts from clean memory (step 1 of the
// paper's Fig. 2 loop). Implementations pre-generate their synthetic
// datasets once so Build only pays serialization cost.
type Builder interface {
	// AppName identifies the application this builder constructs.
	AppName() string
	// Build materializes a fresh instance.
	Build() (App, error)
}

// SnapshotApp is an App that supports the build-once, restore-per-trial
// lifecycle: Snapshot captures the instance's complete state (simulated
// memory via simmem.Snapshot plus any host-side mutable state — stack
// depth, allocator bookkeeping), and Reset rolls everything back so the
// instance is indistinguishable from a fresh Build at the captured
// point. The campaign engine snapshots once per worker and resets
// before every trial.
type SnapshotApp interface {
	App
	// Snapshot captures the current state as the reset point,
	// superseding any previous capture.
	Snapshot() error
	// Reset restores the captured state, returning the number of
	// simulated pages rolled back. It fails if Snapshot was never
	// called.
	Reset() (dirtyPages int, err error)
}

// SnapshotBuilder is the optional snapshot capability of a Builder.
// Builders that implement it let campaigns reuse one instance across
// trials; the engine type-asserts and falls back to per-trial Build
// otherwise.
type SnapshotBuilder interface {
	Builder
	// BuildSnapshot materializes a fresh snapshot-capable instance.
	BuildSnapshot() (SnapshotApp, error)
}

// Crash-worthy application errors. Memory faults (simmem.Fault) are the
// third member of this family.
var (
	// ErrBudgetExceeded is returned when a request exceeds its operation
	// budget — the simulated equivalent of a corrupted loop bound or
	// pointer cycle hanging the process until the client declares it
	// dead.
	ErrBudgetExceeded = errors.New("apps: request operation budget exceeded")
	// ErrAssert is returned when an internal invariant that a native
	// implementation would abort() on is violated.
	ErrAssert = errors.New("apps: application invariant violated")
)

// Assertf returns an ErrAssert-wrapped error.
func Assertf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrAssert}, args...)...)
}

// Budget is a per-request operation watchdog.
type Budget struct {
	left int
}

// NewBudget creates a budget of n operations.
func NewBudget(n int) *Budget { return &Budget{left: n} }

// Spend consumes n operations, returning ErrBudgetExceeded when the budget
// runs out.
func (b *Budget) Spend(n int) error {
	b.left -= n
	if b.left < 0 {
		return ErrBudgetExceeded
	}
	return nil
}

// Remaining returns the operations left.
func (b *Budget) Remaining() int { return b.left }

// Digest is an incremental FNV-1a 64-bit hash for building Responses.
type Digest struct {
	h uint64
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// NewDigest returns an initialized digest.
func NewDigest() *Digest { return &Digest{h: fnvOffset} }

// AddU64 folds a 64-bit value into the digest.
func (d *Digest) AddU64(v uint64) {
	for i := 0; i < 8; i++ {
		d.h ^= v & 0xff
		d.h *= fnvPrime
		v >>= 8
	}
}

// AddU32 folds a 32-bit value into the digest.
func (d *Digest) AddU32(v uint32) { d.AddU64(uint64(v)) }

// AddBytes folds raw bytes into the digest.
func (d *Digest) AddBytes(b []byte) {
	for _, x := range b {
		d.h ^= uint64(x)
		d.h *= fnvPrime
	}
}

// Sum returns the current hash value.
func (d *Digest) Sum() uint64 { return d.h }

// Response returns the digest as a Response.
func (d *Digest) Response() Response { return Response{Digest: d.h} }

// IsCrash reports whether an error from Serve counts as outcome (2.3) in
// the paper's taxonomy — an application or system crash.
func IsCrash(err error) bool {
	return err != nil &&
		(simmem.IsFault(err) || errors.Is(err, ErrBudgetExceeded) || errors.Is(err, ErrAssert))
}
