// Package monitor implements the paper's memory access monitoring
// framework (Section IV-B): watchpoints on sampled application addresses,
// safe/unsafe duration accounting, safe-ratio computation (Section III-B,
// Fig. 5b), per-page write-frequency tracking, and the implicit/explicit
// data recoverability classification of Section III-C (Table 5).
//
// Where the paper attaches x86 debug-register watchpoints through a
// debugger, this package observes every access of a simulated address
// space exactly, on its virtual clock.
package monitor

import (
	"fmt"
	"math/rand"
	"time"

	"hrmsim/internal/simmem"
	"hrmsim/internal/stats"
)

// ExplicitThreshold is the write-interval above which data counts as
// explicitly recoverable: the paper classifies memory written to less than
// once every five minutes as cheap to checkpoint.
const ExplicitThreshold = 5 * time.Minute

// watchRec is the per-watched-address state.
type watchRec struct {
	addr   simmem.Addr
	kind   simmem.RegionKind
	last   time.Duration // time of previous reference
	seen   bool          // any reference observed yet
	safe   time.Duration // Σ (write time − previous reference time)
	unsafe time.Duration // Σ (read time − previous reference time)
	loads  int
	stores int
}

// pageTrack is per-region page write/read counting.
type pageTrack struct {
	region *simmem.Region
	writes []uint64
	reads  []uint64
}

// Monitor observes a simulated address space. Register it with
// simmem.AddressSpace.AddAccessObserver.
type Monitor struct {
	pageSize int
	clock    *simmem.Clock
	start    time.Duration
	// buckets groups watchpoints by page-granularity bucket so an access
	// event only scans the few watchpoints near it.
	buckets map[uint64][]*watchRec
	watched map[simmem.Addr]*watchRec
	pages   map[*simmem.Region]*pageTrack
}

// New creates a monitor for the address space. The observation window
// starts at the clock's current time.
func New(as *simmem.AddressSpace) *Monitor {
	return &Monitor{
		pageSize: as.PageSize(),
		clock:    as.Clock(),
		start:    as.Clock().Now(),
		buckets:  make(map[uint64][]*watchRec),
		watched:  make(map[simmem.Addr]*watchRec),
		pages:    make(map[*simmem.Region]*pageTrack),
	}
}

// Watch installs a watchpoint on one byte address in the given region
// kind. Watching the same address twice is a no-op.
func (m *Monitor) Watch(addr simmem.Addr, kind simmem.RegionKind) {
	if _, ok := m.watched[addr]; ok {
		return
	}
	rec := &watchRec{addr: addr, kind: kind}
	m.watched[addr] = rec
	b := uint64(addr) / uint64(m.pageSize)
	m.buckets[b] = append(m.buckets[b], rec)
}

// WatchSample installs n watchpoints on addresses sampled uniformly from
// the used bytes of the regions accepted by filter, i.e. with per-region
// counts proportional to region size — the paper's Fig. 5b sampling. It
// returns the number actually installed (less than n only if the sampler
// keeps hitting already-watched addresses or no region has used bytes).
func (m *Monitor) WatchSample(as *simmem.AddressSpace, rng *rand.Rand, n int, filter func(*simmem.Region) bool) int {
	installed := 0
	attempts := 0
	for installed < n && attempts < 20*n+100 {
		attempts++
		addr, ok := as.SampleAddr(rng, filter)
		if !ok {
			break
		}
		if _, dup := m.watched[addr]; dup {
			continue
		}
		var kind simmem.RegionKind
		for _, r := range as.Regions() {
			if r.Contains(addr) {
				kind = r.Kind()
				break
			}
		}
		m.Watch(addr, kind)
		installed++
	}
	return installed
}

// TrackPages enables per-page write/read counting for a region, the input
// to the recoverability classification.
func (m *Monitor) TrackPages(r *simmem.Region) {
	if _, ok := m.pages[r]; ok {
		return
	}
	m.pages[r] = &pageTrack{
		region: r,
		writes: make([]uint64, r.PageCount()),
		reads:  make([]uint64, r.PageCount()),
	}
}

var _ simmem.AccessObserver = (*Monitor)(nil)

// ObserveAccess implements simmem.AccessObserver.
func (m *Monitor) ObserveAccess(ev simmem.AccessEvent) {
	// Update watchpoints: scan the buckets the access range overlaps.
	lo := uint64(ev.Addr) / uint64(m.pageSize)
	hi := (uint64(ev.Addr) + uint64(ev.Len) - 1) / uint64(m.pageSize)
	for b := lo; b <= hi; b++ {
		for _, rec := range m.buckets[b] {
			if rec.addr < ev.Addr || rec.addr >= ev.Addr+simmem.Addr(ev.Len) {
				continue
			}
			m.touch(rec, ev)
		}
	}
	// Update page counters.
	if pt, ok := m.pages[ev.Region]; ok {
		first := ev.Region.PageIndex(ev.Addr)
		last := ev.Region.PageIndex(ev.Addr + simmem.Addr(ev.Len-1))
		for p := first; p <= last; p++ {
			if ev.Kind == simmem.Store {
				pt.writes[p]++
			} else {
				pt.reads[p]++
			}
		}
	}
}

// touch applies one reference to a watchpoint, attributing the interval
// since the previous reference per the Section III-B definitions.
func (m *Monitor) touch(rec *watchRec, ev simmem.AccessEvent) {
	if rec.seen {
		dt := ev.Time - rec.last
		if dt > 0 {
			if ev.Kind == simmem.Store {
				rec.safe += dt
			} else {
				rec.unsafe += dt
			}
		}
	}
	rec.seen = true
	rec.last = ev.Time
	if ev.Kind == simmem.Store {
		rec.stores++
	} else {
		rec.loads++
	}
}

// ResetTrial implements simmem.TrialResetter: it discards everything
// accumulated since construction — watchpoint intervals and reference
// counts, page write/read counters — and restarts the observation window
// at the clock's current reading. A monitor retained across
// snapshot-lifecycle trials therefore observes each trial as if freshly
// installed. The watchpoints and tracked regions themselves stay.
func (m *Monitor) ResetTrial() {
	for _, rec := range m.watched {
		rec.last = 0
		rec.seen = false
		rec.safe = 0
		rec.unsafe = 0
		rec.loads = 0
		rec.stores = 0
	}
	for _, pt := range m.pages {
		for i := range pt.writes {
			pt.writes[i] = 0
		}
		for i := range pt.reads {
			pt.reads[i] = 0
		}
	}
	m.start = m.clock.Now()
}

// AddressStats summarizes one watched address.
type AddressStats struct {
	Addr      simmem.Addr
	Kind      simmem.RegionKind
	Loads     int
	Stores    int
	SafeDur   time.Duration
	UnsafeDur time.Duration
	SafeRatio float64
	HasAccess bool // at least two references (a ratio exists)
}

// Stats returns the statistics for a watched address.
func (m *Monitor) Stats(addr simmem.Addr) (AddressStats, error) {
	rec, ok := m.watched[addr]
	if !ok {
		return AddressStats{}, fmt.Errorf("monitor: address %#x is not watched", uint64(addr))
	}
	return recStats(rec), nil
}

func recStats(rec *watchRec) AddressStats {
	s := AddressStats{
		Addr: rec.addr, Kind: rec.kind,
		Loads: rec.loads, Stores: rec.stores,
		SafeDur: rec.safe, UnsafeDur: rec.unsafe,
	}
	total := rec.safe + rec.unsafe
	if total > 0 {
		s.SafeRatio = float64(rec.safe) / float64(total)
		s.HasAccess = true
	}
	return s
}

// SafeRatios returns the safe ratios of all watched addresses in the given
// region kind that accumulated at least one attributed interval — the raw
// data behind one violin of Fig. 5b.
func (m *Monitor) SafeRatios(kind simmem.RegionKind) []float64 {
	var out []float64
	for _, rec := range m.watched {
		if rec.kind != kind {
			continue
		}
		if s := recStats(rec); s.HasAccess {
			out = append(out, s.SafeRatio)
		}
	}
	return out
}

// AllStats returns statistics for every watched address.
func (m *Monitor) AllStats() []AddressStats {
	out := make([]AddressStats, 0, len(m.watched))
	for _, rec := range m.watched {
		out = append(out, recStats(rec))
	}
	return out
}

// RegionSafeSummary summarizes a region kind's safe ratios.
func (m *Monitor) RegionSafeSummary(kind simmem.RegionKind) (stats.Summary, error) {
	return stats.Summarize(m.SafeRatios(kind))
}

// Recoverability is the Table 5 classification for one region: the
// fraction of its used pages recoverable by each strategy. A page may be
// both, so the fields can sum to more than 1.
type Recoverability struct {
	// Implicit: a clean copy already exists in persistent storage and
	// the page was never dirtied (read-only file-backed data).
	Implicit float64
	// Explicit: the page is written rarely enough (at most once per
	// ExplicitThreshold on average) that mirroring writes to persistent
	// storage is cheap.
	Explicit float64
	// Either is the fraction recoverable by at least one strategy.
	Either float64
	// Pages is the number of used pages considered.
	Pages int
}

// RecoverabilityOf classifies the used pages of a tracked region over the
// observation window [monitor start, clock now). TrackPages must have been
// called for the region before the workload ran.
func (m *Monitor) RecoverabilityOf(r *simmem.Region) (Recoverability, error) {
	pt, ok := m.pages[r]
	if !ok {
		return Recoverability{}, fmt.Errorf("monitor: region %q pages are not tracked", r.Name())
	}
	span := m.clock.Now() - m.start
	usedPages := (r.Used() + m.pageSize - 1) / m.pageSize
	if usedPages == 0 {
		return Recoverability{}, nil
	}
	var implicit, explicit, either int
	for p := 0; p < usedPages; p++ {
		w := pt.writes[p]
		isImplicit := r.Backed() && (r.ReadOnly() || w == 0)
		// Average write interval over the window; zero writes means
		// an unbounded interval.
		isExplicit := w == 0 || time.Duration(float64(span)/float64(w)) >= ExplicitThreshold
		if isImplicit {
			implicit++
		}
		if isExplicit {
			explicit++
		}
		if isImplicit || isExplicit {
			either++
		}
	}
	n := float64(usedPages)
	return Recoverability{
		Implicit: float64(implicit) / n,
		Explicit: float64(explicit) / n,
		Either:   float64(either) / n,
		Pages:    usedPages,
	}, nil
}

// PageWrites returns the write count observed for page i of a tracked
// region.
func (m *Monitor) PageWrites(r *simmem.Region, i int) (uint64, error) {
	pt, ok := m.pages[r]
	if !ok {
		return 0, fmt.Errorf("monitor: region %q pages are not tracked", r.Name())
	}
	if i < 0 || i >= len(pt.writes) {
		return 0, fmt.Errorf("monitor: page %d out of range [0,%d)", i, len(pt.writes))
	}
	return pt.writes[i], nil
}

// WatchedCount returns the number of installed watchpoints.
func (m *Monitor) WatchedCount() int { return len(m.watched) }

// Window returns the observation window so far.
func (m *Monitor) Window() time.Duration { return m.clock.Now() - m.start }
