// Shard heartbeat/status records: the campaign control plane's on-disk
// contract. While a shard runs, its supervisor periodically emits a
// ShardStatus — shard coordinates, trials done/total, dispositions,
// throughput, ETA, outcome taxonomy counts so far, and a full obsv
// registry snapshot — through the CampaignConfig.StatusSink hook. The
// facade writes each record to a well-known file next to the shard's
// journal (atomic temp-file + rename, the manifest's discipline), so
// any observer — the coordinator's live /statusz, `hrmsim status`, or a
// human with cat — can read a consistent view of a live or dead
// campaign without touching the journal. The final record of a run has
// Running=false, which is what lets `hrmsim status` render a finished
// campaign directory identically to a live one.
package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"hrmsim/internal/obsv"
)

// StatusSchemaVersion identifies the shard status record schema,
// versioned independently of the journal, manifest, and -json envelope.
// The usual rule: renaming or reinterpreting a field bumps it, additions
// do not.
const StatusSchemaVersion = 1

// StatusStream is the stream identifier in every status record.
const StatusStream = "hrmsim-shard-status"

// ShardStatus is one shard's heartbeat: a point-in-time progress record
// the supervisor emits through CampaignConfig.StatusSink. The supervisor
// fills every campaign-engine field; the facade stamps the identity
// fields (ConfigHash, Campaign, shard coordinates) it alone knows, then
// persists the record.
type ShardStatus struct {
	SchemaVersion int    `json:"schema_version"`
	Stream        string `json:"stream"`
	// ConfigHash / Campaign are the same identity evidence the shard
	// manifest carries, so status files from different campaigns cannot
	// be silently aggregated (stamped by the facade).
	ConfigHash string      `json:"config_hash,omitempty"`
	Campaign   JournalMeta `json:"campaign,omitempty"`
	// ShardIndex / ShardCount are the shard coordinates; TrialLo/TrialHi
	// is the owned half-open trial index range.
	ShardIndex int `json:"shard_index"`
	ShardCount int `json:"shard_count"`
	TrialLo    int `json:"trial_lo"`
	TrialHi    int `json:"trial_hi"`
	// Done counts trials with a result so far (completed + aborted,
	// including resumed records); Total is the shard's range size.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Dispositions: Completed trials reached Fig. 1 classification,
	// Aborted ones were given up on, Resumed ones were merged from a
	// previous run's journal (Resumed trials also count under their
	// disposition).
	Completed int `json:"completed"`
	Aborted   int `json:"aborted,omitempty"`
	Resumed   int `json:"resumed,omitempty"`
	// Outcomes counts completed trials per Fig. 1 taxonomy label
	// (Outcome.String() keys: "crash", "masked-by-overwrite", ...).
	Outcomes map[string]int `json:"outcomes,omitempty"`
	// TrialsPerSec / EtaSeconds / ElapsedSeconds mirror ProgressInfo,
	// flattened to JSON-friendly units.
	TrialsPerSec   float64 `json:"trials_per_sec,omitempty"`
	EtaSeconds     float64 `json:"eta_seconds,omitempty"`
	ElapsedSeconds float64 `json:"elapsed_seconds,omitempty"`
	// Adaptive planner telemetry, present only when the campaign runs
	// under a non-fixed TrialPlanner (all omitempty, so fixed-campaign
	// status records are byte-identical to earlier schema-1 writers):
	// CIHalfWidth is the latest Wilson CI half-width verdict on the
	// crash probability (1 until the first evaluation boundary);
	// PlannedTrials is the planner's current campaign-level trial
	// budget (Total tracks it, so done/total stays meaningful);
	// PlanFinal marks the stopping rule has fired; TrialsSaved is the
	// requested-minus-planned trial count once the plan is final.
	Adaptive      bool    `json:"adaptive,omitempty"`
	CIHalfWidth   float64 `json:"ci_half_width,omitempty"`
	PlannedTrials int     `json:"planned_trials,omitempty"`
	PlanFinal     bool    `json:"plan_final,omitempty"`
	TrialsSaved   int     `json:"trials_saved,omitempty"`
	// Running is true on every heartbeat but the final one; Interrupted
	// is set on the final record of a cancelled run.
	Running     bool `json:"running"`
	Interrupted bool `json:"interrupted,omitempty"`
	// WallUnixNanos is the host wall-clock instant the record was
	// assembled — the heartbeat timestamp observers age against.
	WallUnixNanos int64 `json:"wall_unix_ns"`
	// Metrics is the shard's full obsv registry snapshot at heartbeat
	// time, merged fleet-wide by obsv.MergeSnapshots.
	Metrics *obsv.Snapshot `json:"metrics,omitempty"`
}

// DefaultStatusInterval is the heartbeat period when
// CampaignConfig.StatusInterval is zero.
const DefaultStatusInterval = 1 * time.Second

// ShardStatusName returns the canonical status file name of shard i of
// n: shard-0003-of-0008.status.json, sorting beside the shard's journal
// and manifest.
func ShardStatusName(index, count int) string {
	return fmt.Sprintf("shard-%04d-of-%04d.status.json", index, count)
}

// StatusPathFor derives the canonical status path for a journal path:
// the .jsonl suffix (when present) replaced by .status.json.
func StatusPathFor(journalPath string) string {
	return strings.TrimSuffix(journalPath, ".jsonl") + ".status.json"
}

// WriteStatus writes the status record to path, stamping the stream id
// and schema version. Like WriteManifest the write is atomic (temp file
// + rename), so a tailing observer never reads a torn record; each
// heartbeat simply replaces the last.
func WriteStatus(path string, st ShardStatus) error {
	st.SchemaVersion = StatusSchemaVersion
	st.Stream = StatusStream
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("core: encoding shard status: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("core: writing shard status: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: writing shard status: %w", err)
	}
	return nil
}

// ReadStatus reads and validates one shard status record: stream, schema
// version, and shard coordinates.
func ReadStatus(path string) (ShardStatus, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return ShardStatus{}, fmt.Errorf("core: reading shard status: %w", err)
	}
	var st ShardStatus
	if err := json.Unmarshal(b, &st); err != nil {
		return ShardStatus{}, fmt.Errorf("core: parsing shard status %s: %w", path, err)
	}
	if st.Stream != StatusStream {
		return ShardStatus{}, fmt.Errorf("core: %s is not a shard status record (stream %q)", path, st.Stream)
	}
	if st.SchemaVersion != StatusSchemaVersion {
		return ShardStatus{}, fmt.Errorf("core: %s: unsupported status schema version %d (want %d)",
			path, st.SchemaVersion, StatusSchemaVersion)
	}
	if err := (ShardSpec{Index: st.ShardIndex, Count: st.ShardCount}).Validate(); err != nil {
		return ShardStatus{}, fmt.Errorf("core: %s: %w", path, err)
	}
	return st, nil
}

// LoadStatusDir discovers every *.status.json in dir and loads it,
// sorted by shard index (ties broken by file name). Unlike LoadShardDir
// an empty result is not an error: a campaign directory legitimately has
// no status files before the first heartbeat (or when run without a
// status sink).
func LoadStatusDir(dir string) ([]ShardStatus, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("core: reading shard directory: %w", err)
	}
	type loaded struct {
		st   ShardStatus
		name string
	}
	var all []loaded
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".status.json") {
			continue
		}
		st, err := ReadStatus(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		all = append(all, loaded{st, e.Name()})
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].st.ShardIndex != all[j].st.ShardIndex {
			return all[i].st.ShardIndex < all[j].st.ShardIndex
		}
		return all[i].name < all[j].name
	})
	out := make([]ShardStatus, len(all))
	for i, l := range all {
		out[i] = l.st
	}
	return out, nil
}
