// Package lifetime simulates continuous server operation under a memory
// error arrival process: the workload loops on the virtual clock, errors
// arrive per a faults.RateModel, crashes cost a recovery period and
// reboot the application, and availability plus incorrect-response rates
// are accounted directly — validating the design package's analytic
// Table 6 model by simulation, and implementing the paper's stated future
// work of "further evaluating the heterogeneous hardware detection and
// software recovery designs".
//
// Reboots model a real machine: transient (soft) errors vanish with the
// old memory image, but hard faults are physical — their stuck-at state is
// re-applied to the fresh instance at the same region offsets.
package lifetime

import (
	"fmt"
	"math/rand"
	"time"

	"hrmsim/internal/apps"
	"hrmsim/internal/core"
	"hrmsim/internal/faults"
	"hrmsim/internal/inject"
	"hrmsim/internal/simmem"
)

// Config configures a lifetime simulation.
type Config struct {
	// Builder constructs application instances. The workload must be
	// idempotent across passes (the web search application is; see the
	// package tests), because responses are compared against one golden
	// pass.
	Builder apps.Builder
	// Rates is the error arrival model (e.g. 2000/month).
	Rates faults.RateModel
	// Horizon is the simulated operation period (default one month).
	Horizon time.Duration
	// RecoveryTime is the downtime per crash (Table 6: 10 minutes).
	RecoveryTime time.Duration
	// Seed drives arrivals and injection placement.
	Seed int64
	// Attach, if set, is called on every fresh instance (including
	// after reboots) to install recovery machinery — checkpointers,
	// page retirers — before it serves.
	Attach func(app apps.App) error
	// MaxErrors caps injected errors as a runaway guard (default: no
	// cap beyond the arrival process).
	MaxErrors int
}

// Result summarizes a simulated lifetime.
type Result struct {
	// ErrorsInjected counts error arrivals applied.
	ErrorsInjected int
	// Crashes counts application/system crashes.
	Crashes int
	// Reboots equals Crashes (each crash costs one recovery).
	Reboots int
	// Downtime is the accumulated recovery time.
	Downtime time.Duration
	// Availability is uptime/(uptime+downtime) over the horizon.
	Availability float64
	// Requests and Incorrect count served responses and wrong ones.
	Requests, Incorrect int
	// IncorrectPerMillion is the incorrect rate while operational.
	IncorrectPerMillion float64
}

// hardFault records a persistent fault so it survives reboots.
type hardFault struct {
	regionName string
	offset     int
	bit        int
	value      int
}

// Simulate runs the lifetime simulation.
func Simulate(cfg Config) (Result, error) {
	if cfg.Builder == nil {
		return Result{}, fmt.Errorf("lifetime: builder is required")
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = faults.Month
	}
	if cfg.Horizon <= 0 {
		return Result{}, fmt.Errorf("lifetime: horizon must be positive")
	}
	if cfg.RecoveryTime <= 0 {
		cfg.RecoveryTime = 10 * time.Minute
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	golden, err := core.GoldenRun(cfg.Builder)
	if err != nil {
		return Result{}, err
	}
	arrivals, err := cfg.Rates.Arrivals(rng, cfg.Horizon)
	if err != nil {
		return Result{}, err
	}
	if cfg.MaxErrors > 0 && len(arrivals) > cfg.MaxErrors {
		arrivals = arrivals[:cfg.MaxErrors]
	}

	var res Result
	var hardFaults []hardFault

	boot := func() (apps.App, error) {
		app, err := cfg.Builder.Build()
		if err != nil {
			return nil, err
		}
		// Physical stuck-at faults persist across the reboot.
		for _, hf := range hardFaults {
			r := app.Space().RegionByName(hf.regionName)
			if r == nil {
				continue
			}
			if err := app.Space().StickBit(r.Base()+simmem.Addr(hf.offset), hf.bit, hf.value); err != nil {
				return nil, err
			}
		}
		if cfg.Attach != nil {
			if err := cfg.Attach(app); err != nil {
				return nil, err
			}
		}
		return app, nil
	}

	app, err := boot()
	if err != nil {
		return Result{}, err
	}
	clock := app.Space().Clock()
	nextArrival := 0
	q := 0

	for clock.Now() < cfg.Horizon {
		// Apply every error that has arrived by now.
		for nextArrival < len(arrivals) && arrivals[nextArrival].At <= clock.Now() {
			a := arrivals[nextArrival]
			nextArrival++
			inj, err := inject.Random(app.Space(), rng, a.Spec, nil)
			if err != nil {
				return Result{}, fmt.Errorf("lifetime: injecting arrival %d: %w", nextArrival-1, err)
			}
			res.ErrorsInjected++
			if a.Spec.Class == faults.Hard {
				for _, tgt := range inj.Targets {
					off := int(tgt.Addr - inj.Region.Base())
					var raw [1]byte
					if err := app.Space().ReadRaw(tgt.Addr, raw[:]); err != nil {
						return Result{}, err
					}
					for _, bit := range tgt.Bits {
						// StickBit in inject set the cell to the
						// flipped value; record that value.
						v := int(raw[0]>>bit&1) ^ 1
						hardFaults = append(hardFaults, hardFault{
							regionName: inj.Region.Name(),
							offset:     off,
							bit:        bit,
							value:      v,
						})
					}
				}
			}
		}

		resp, err := serveGuarded(app, q)
		if err != nil {
			if !apps.IsCrash(err) {
				return Result{}, fmt.Errorf("lifetime: request %d: %w", q, err)
			}
			// Crash: pay the recovery time and reboot.
			res.Crashes++
			res.Reboots++
			res.Downtime += cfg.RecoveryTime
			now := clock.Now() + cfg.RecoveryTime
			app, err = boot()
			if err != nil {
				return Result{}, err
			}
			clock = app.Space().Clock()
			clock.Set(now)
			q = 0 // the restarted server begins its workload cycle anew
			continue
		}
		res.Requests++
		if resp.Digest != golden[q] {
			res.Incorrect++
		}
		q = (q + 1) % len(golden)
	}

	// Downtime elapses on the same clock the horizon bounds, so the
	// horizon is total wall time.
	res.Availability = 1 - float64(res.Downtime)/float64(cfg.Horizon)
	if res.Availability < 0 {
		res.Availability = 0
	}
	if res.Requests > 0 {
		res.IncorrectPerMillion = float64(res.Incorrect) / float64(res.Requests) * 1e6
	}
	return res, nil
}

// serveGuarded converts panics into crash-worthy errors.
func serveGuarded(app apps.App, q int) (resp apps.Response, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = apps.Assertf("panic serving request %d: %v", q, r)
		}
	}()
	return app.Serve(q)
}
