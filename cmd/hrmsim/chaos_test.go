package main

import (
	"strings"
	"testing"
)

// chaosArgs is a short self-hosted experiment sized for CI: small working
// set, few connections, sub-second phases, read-only load.
func chaosArgs(extra ...string) []string {
	args := []string{"chaos",
		"-keys", "128", "-conns", "4", "-read-fraction", "1",
		"-steady", "150ms", "-chaos", "300ms", "-recovery", "150ms",
		"-sample-every", "50ms", "-injections", "8", "-seed", "42",
	}
	return append(args, extra...)
}

func TestChaosJSONEnvelope(t *testing.T) {
	out := captureStdout(t, func() error {
		return run(chaosArgs("-ecc", "secded", "-json"))
	})
	res := decodeEnvelope(t, out, "chaos")

	if got := res["schema_version"]; got != float64(1) {
		t.Errorf("verdict schema_version = %v", got)
	}
	if got := res["experiment"]; got != "kvserve-secded" {
		t.Errorf("experiment = %v", got)
	}
	if got := res["seed"]; got != float64(42) {
		t.Errorf("seed = %v", got)
	}
	if got := res["pass"]; got != true {
		t.Errorf("SEC-DED verdict pass = %v; results: %v", got, res["results"])
	}
	if s, ok := res["samples"].(float64); !ok || s < 3 {
		t.Errorf("samples = %v, want >= 3 (one per phase boundary)", res["samples"])
	}

	phases, ok := res["phases"].([]any)
	if !ok || len(phases) != 3 {
		t.Fatalf("phases = %v, want 3 reports", res["phases"])
	}
	wantPhases := []string{"steady", "chaos", "recovery"}
	for i, raw := range phases {
		p, ok := raw.(map[string]any)
		if !ok {
			t.Fatalf("phase %d not an object: %v", i, raw)
		}
		if p["phase"] != wantPhases[i] {
			t.Errorf("phase %d = %v, want %s", i, p["phase"], wantPhases[i])
		}
		for _, key := range []string{"duration_ms", "ops", "gets", "errors",
			"wrong_values", "injections", "corrected", "recovered", "retired", "signals"} {
			if _, present := p[key]; !present {
				t.Errorf("phase %s missing %q", wantPhases[i], key)
			}
		}
		if ops, _ := p["ops"].(float64); ops <= 0 {
			t.Errorf("phase %s saw no traffic", wantPhases[i])
		}
	}
	chaosPhase := phases[1].(map[string]any)
	if inj, _ := chaosPhase["injections"].(float64); inj <= 0 {
		t.Errorf("chaos phase injections = %v", chaosPhase["injections"])
	}
	if corr, _ := chaosPhase["corrected"].(float64); corr <= 0 {
		t.Errorf("chaos phase corrected = %v, want > 0 under SEC-DED", chaosPhase["corrected"])
	}

	results, ok := res["results"].([]any)
	if !ok || len(results) == 0 {
		t.Fatalf("results = %v", res["results"])
	}
	names := map[string]bool{}
	for _, raw := range results {
		r := raw.(map[string]any)
		for _, key := range []string{"name", "signal", "phase", "comparison", "threshold", "pass"} {
			if _, present := r[key]; !present {
				t.Errorf("result %v missing %q", r["name"], key)
			}
		}
		if r["pass"] != true {
			t.Errorf("SEC-DED run failed objective %v in %v: %v", r["name"], r["phase"], r["reason"])
		}
		names[r["name"].(string)] = true
	}
	for _, want := range []string{"p50-latency", "p99-latency", "error-rate", "no-wrong-values"} {
		if !names[want] {
			t.Errorf("default objective %q missing from results", want)
		}
	}

	// The envelope's metrics snapshot must carry the chaos_* and kvload_*
	// instrumentation.
	for _, metric := range []string{"chaos_injections_total", "chaos_probe_samples_total",
		"kvload_ops_total", "kvload_op_latency_us"} {
		if !strings.Contains(out, metric) {
			t.Errorf("envelope metrics missing %s", metric)
		}
	}
}

// TestChaosUnprotectedFailsVerdict pins the CLI-level half of the
// discriminating experiment: same flags, ecc none, verdict FAIL.
func TestChaosUnprotectedFailsVerdict(t *testing.T) {
	out := captureStdout(t, func() error {
		return run(chaosArgs("-ecc", "none", "-json"))
	})
	res := decodeEnvelope(t, out, "chaos")
	if got := res["pass"]; got != false {
		t.Errorf("unprotected verdict pass = %v, want false", got)
	}
	failedWrongValues := false
	for _, raw := range res["results"].([]any) {
		r := raw.(map[string]any)
		if r["name"] == "no-wrong-values" && r["phase"] == "chaos" && r["pass"] == false {
			failedWrongValues = true
		}
	}
	if !failedWrongValues {
		t.Error("no-wrong-values did not fail in the chaos phase")
	}
}

// TestChaosRenderedVerdict checks the human-readable table path.
func TestChaosRenderedVerdict(t *testing.T) {
	out := captureStdout(t, func() error {
		return run(chaosArgs("-ecc", "parity", "-recover", "parr"))
	})
	for _, want := range []string{"chaos experiment", "PHASE", "SLO",
		"recovery-active", "verdict: PASS"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered verdict missing %q:\n%s", want, out)
		}
	}
}
