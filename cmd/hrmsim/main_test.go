package main

import (
	"testing"
)

func TestRunDispatch(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no subcommand accepted")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help: %v", err)
	}
}

func TestCmdCharacterizeSmall(t *testing.T) {
	err := run([]string{"characterize", "-app", "kvstore", "-size", "small", "-trials", "20"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCmdCharacterizeBadFlags(t *testing.T) {
	if err := run([]string{"characterize", "-size", "jumbo"}); err == nil {
		t.Error("bad size accepted")
	}
	if err := run([]string{"characterize", "-app", "nope", "-trials", "1"}); err == nil {
		t.Error("bad app accepted")
	}
}

func TestCmdProfileSmall(t *testing.T) {
	err := run([]string{"profile", "-app", "kvstore", "-size", "small", "-watchpoints", "60"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCmdDesignSpaceAndPlanAndTolerable(t *testing.T) {
	if err := run([]string{"designspace"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"plan", "-target", "0.999"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"tolerable"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdTablesSingle(t *testing.T) {
	if err := run([]string{"tables", "-t", "table1", "-trials", "10"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"tables", "-t", "fig99", "-trials", "10"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestCmdLifetimeShort(t *testing.T) {
	if err := run([]string{"lifetime", "-hours", "1", "-errors", "50000"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"lifetime", "-protection", "asbestos"}); err == nil {
		t.Error("bad protection accepted")
	}
}
